// Package discovery implements TunIO's Application I/O Discovery component
// (§III-B): it parses application source, finds I/O calls, marks their
// dependents (arguments, assignment targets, loop/conditional headers) and
// contextual parents in a fixpoint marking loop, and reconstructs a reduced
// I/O kernel that performs the same I/O. Optional source transformations —
// loop reduction and I/O path switching — further cut evaluation cost at
// a documented accuracy trade-off.
package discovery

import (
	"fmt"
	"strings"

	"tunio/internal/analysis"
	"tunio/internal/csrc"
)

// LoopReduceBuiltin is the helper the loop-reduction transform inserts
// around loop bounds; the interpreter implements it as
// max(1, floor(n * fraction)).
const LoopReduceBuiltin = "__loop_reduce"

// Options configure the discovery pipeline (the `options` input of the
// Table I discover_io interface).
type Options struct {
	// ExtraIOCalls adds application-specific function names to the I/O
	// call set (the defaults cover HDF5, MPI-IO, and stdio).
	ExtraIOCalls []string
	// KeepFuncs forces entire functions to be kept (the paper's manually
	// indicated keep regions).
	KeepFuncs []string
	// LoopReduction keeps only this fraction of iterations of outermost
	// I/O loops (0 disables; the paper's Figure 8b uses 0.01).
	LoopReduction float64
	// PathSwitch rewrites file paths in I/O calls to /dev/shm so
	// evaluation I/O lands in memory instead of the parallel file system.
	PathSwitch bool
	// SimulateCompute replaces removed compute statements with synthetic
	// compute_flops calls so the kernel keeps the application's timing
	// shape (a §VI future-work transform; off by default).
	SimulateCompute bool
	// RemoveBlindWrites drops H5Dwrite calls overwritten by a later write
	// to the same dataset with no intervening read (§VI future-work
	// transform; trades footprint fidelity for speed, off by default).
	RemoveBlindWrites bool
	// Heuristic reverts marking to the paper's per-line fixpoint loop
	// (§III-B) instead of the default CFG/def-use backward slicer. The
	// heuristic keeps a superset of the precise slice — definitions that
	// cannot reach any I/O use survive — while replaying the same I/O
	// request stream.
	Heuristic bool
	// PreciseSlice forces the analysis package's CFG/def-use backward
	// slicer.
	//
	// Deprecated: precise slicing is the default; the field remains for
	// callers predating the flip and overrides Heuristic when both are
	// set. Use Heuristic to opt into the fixpoint marking loop.
	PreciseSlice bool
}

// usePrecise resolves the slicer choice: precise by default, heuristic on
// request, with the legacy PreciseSlice field forcing precise.
func (o Options) usePrecise() bool {
	return !o.Heuristic || o.PreciseSlice
}

// Kernel is the discovery output.
type Kernel struct {
	// File is the reconstructed AST.
	File *csrc.File
	// Source is the formatted kernel source.
	Source string
	// FormattedInput is the formatted original (post-preprocessing, the
	// form the per-line marking operated on).
	FormattedInput string
	// MarkedLines lists the input lines kept, 1-based, ascending.
	MarkedLines []int
	// TotalLines is the formatted input's line count.
	TotalLines int
	// LoopScale is the factor by which I/O metrics of reduced loops must
	// be multiplied to estimate the original application (1 = no
	// reduction).
	LoopScale float64
	// ReducedLoops counts loops the reduction transform rewrote.
	ReducedLoops int
	// SimulatedComputeCalls counts synthetic compute calls inserted by the
	// compute-simulation transform.
	SimulatedComputeCalls int
	// RemovedBlindWrites counts H5Dwrite statements elided by the
	// blind-write removal transform.
	RemovedBlindWrites int
	// Warnings are transform-safety diagnostics (TR codes) for the
	// transforms enabled in Options, computed on the kernel before the
	// rewrites run. Empty when no transform is enabled or all enabled
	// transforms are provably safe.
	Warnings []analysis.Diagnostic
	// ResolvedPaths records computed path arguments that string-constant
	// propagation proved constant, letting path switching rewrite call
	// sites that would otherwise be blocked with TR003. Populated only
	// when PathSwitch is enabled.
	ResolvedPaths []ResolvedPath
}

// ResolvedPath is one computed path argument the path-switch transform
// rewrote via string-constant propagation.
type ResolvedPath struct {
	// Call is the opening I/O call (H5Fcreate, fopen, ...).
	Call string
	// Line is the call statement's source line in the kernel.
	Line int
	// Path is the proven constant value of the computed argument.
	Path string
	// Switched is the /dev/shm path substituted at the call site.
	Switched string
}

// defaultIOPrefixes match I/O library calls.
var defaultIOPrefixes = []string{"H5", "MPI_File", "fopen", "fclose", "fwrite", "fread", "fprintf", "fseek"}

// stringWriters are libc calls that write a string into their first
// argument; the marker records that buffer as a definition so path
// construction chains survive the fixpoint marking.
var stringWriters = map[string]bool{
	"sprintf": true, "snprintf": true, "strcpy": true, "strcat": true,
}

// alwaysKeep are runtime calls any kernel needs to execute.
var alwaysKeep = map[string]bool{
	"MPI_Init": true, "MPI_Finalize": true, "MPI_Comm_rank": true,
	"MPI_Comm_size": true, "MPI_Barrier": true,
}

// isIOCall reports whether a function name is an I/O call under the
// options.
func (o Options) isIOCall(name string) bool {
	if alwaysKeep[name] {
		return true
	}
	for _, p := range defaultIOPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	for _, extra := range o.ExtraIOCalls {
		if name == extra {
			return true
		}
	}
	return false
}

// stmtInfo is the marking metadata of one statement.
type stmtInfo struct {
	stmt    csrc.Stmt
	parent  csrc.Stmt // enclosing If/For/While/Block owner statement (nil at function top level)
	fn      string    // enclosing function ("" for globals)
	uses    []string  // qualified variable names read
	defs    []string  // qualified variable names written
	callees []string  // user functions called
	isIO    bool
	marked  bool
}

// marker runs the fixpoint marking loop over a file.
type marker struct {
	file  *csrc.File
	opts  Options
	infos map[int]*stmtInfo // stmt ID -> info
	order []int             // stmt IDs in source order

	localNames map[string]map[string]bool // func -> declared names
	markedVars map[string]bool            // qualified names
	markedFns  map[string]bool            // functions containing marked stmts
}

// Discover runs the full pipeline on C source.
func Discover(source string, opts Options) (*Kernel, error) {
	if opts.LoopReduction < 0 || opts.LoopReduction >= 1 {
		if opts.LoopReduction != 0 {
			return nil, fmt.Errorf("discovery: LoopReduction %v outside (0,1)", opts.LoopReduction)
		}
	}
	file, err := csrc.Parse(source)
	if err != nil {
		return nil, err
	}
	formatted := csrc.Format(file) // assigns per-statement lines

	m := &marker{
		file:       file,
		opts:       opts,
		infos:      map[int]*stmtInfo{},
		localNames: map[string]map[string]bool{},
		markedVars: map[string]bool{},
		markedFns:  map[string]bool{},
	}
	m.collect()
	if opts.usePrecise() {
		// precise path: slice on def-use chains instead of name marking
		keep := analysis.Slice(file, analysis.SliceOptions{
			IsIOCall:  opts.isIOCall,
			KeepFuncs: opts.KeepFuncs,
		})
		for _, id := range m.order {
			if keep[id] {
				m.mark(m.infos[id])
			}
		}
	} else {
		m.seed()
		m.fixpoint()
	}
	m.finishControlFlow()

	kernel := &Kernel{
		File:           m.reconstruct(),
		FormattedInput: formatted,
		TotalLines:     strings.Count(formatted, "\n"),
		LoopScale:      1,
	}
	for _, id := range m.order {
		info := m.infos[id]
		if info.marked && info.stmt.Base().Line > 0 {
			kernel.MarkedLines = append(kernel.MarkedLines, info.stmt.Base().Line)
		}
	}

	// Verification always runs: TR006/TR007 report soundness findings on
	// the extracted kernel even when no transform is requested, and the
	// transform-specific checks stay gated on their options inside
	// VerifyTransforms.
	kernel.Warnings = analysis.VerifyTransforms(kernel.File, analysis.TransformOptions{
		LoopReduction:     opts.LoopReduction > 0,
		PathSwitch:        opts.PathSwitch,
		RemoveBlindWrites: opts.RemoveBlindWrites,
		IsIOCall:          opts.isIOCall,
	})
	preSig := analysis.ComputeSignature(kernel.File, analysis.SignatureOptions{IsIOCall: opts.isIOCall})
	if opts.SimulateCompute {
		kernel.SimulatedComputeCalls = m.simulateCompute(kernel.File)
	}
	if opts.RemoveBlindWrites {
		kernel.RemovedBlindWrites = removeBlindWrites(kernel.File)
	}
	if opts.LoopReduction > 0 {
		kernel.ReducedLoops = reduceLoops(kernel.File, opts.LoopReduction, opts.isIOCall)
		if kernel.ReducedLoops > 0 {
			kernel.LoopScale = 1 / opts.LoopReduction
		}
	}
	if opts.PathSwitch {
		kernel.ResolvedPaths = switchPaths(kernel.File)
	}
	// TR008: a transform that changed the kernel's symbolic I/O volume no
	// longer issues the original request stream. Only provable (exact)
	// before/after signatures are compared; loop reduction is expected to
	// scale volume and reports through LoopScale instead.
	if (opts.RemoveBlindWrites || opts.PathSwitch) && opts.LoopReduction == 0 {
		postSig := analysis.ComputeSignature(kernel.File, analysis.SignatureOptions{IsIOCall: opts.isIOCall})
		kernel.Warnings = append(kernel.Warnings, analysis.VolumeDiagnostics(preSig, postSig)...)
	}
	kernel.Source = csrc.Format(kernel.File)
	return kernel, nil
}

// collect builds statement metadata with parent links and var usage.
func (m *marker) collect() {
	// declared names per function (params + local decls)
	for _, fn := range m.file.Funcs {
		names := map[string]bool{}
		for _, p := range fn.Params {
			names[p.Name] = true
		}
		collectDecls(fn.Body, names)
		m.localNames[fn.Name] = names
	}

	qualify := func(fn, name string) string {
		if fn != "" && m.localNames[fn][name] {
			return fn + ":" + name
		}
		return "::" + name
	}

	var visit func(s csrc.Stmt, parent csrc.Stmt, fn string)
	visitBlock := func(b *csrc.Block, parent csrc.Stmt, fn string) {
		if b == nil {
			return
		}
		for _, s := range b.Stmts {
			visit(s, parent, fn)
		}
	}
	visit = func(s csrc.Stmt, parent csrc.Stmt, fn string) {
		if s == nil {
			return
		}
		info := &stmtInfo{stmt: s, parent: parent, fn: fn}
		m.infos[s.Base().ID] = info
		m.order = append(m.order, s.Base().ID)

		addUses := func(e csrc.Expr) {
			for _, v := range csrc.ExprVars(e) {
				info.uses = append(info.uses, qualify(fn, v))
			}
			csrc.WalkExpr(e, func(x csrc.Expr) bool {
				switch c := x.(type) {
				case *csrc.CallExpr:
					// a call through a locally-declared name (parameter or
					// local used as a function pointer) is not a call to the
					// user function or I/O routine of the same name
					shadowed := fn != "" && m.localNames[fn][c.Fun]
					if m.file.Func(c.Fun) != nil && !shadowed {
						info.callees = append(info.callees, c.Fun)
					}
					if m.opts.isIOCall(c.Fun) && !shadowed {
						info.isIO = true
					}
					// &x arguments are outputs of the call
					for _, a := range c.Args {
						if u, ok := a.(*csrc.UnaryExpr); ok && u.Op == "&" {
							if id, ok := u.X.(*csrc.Ident); ok {
								info.defs = append(info.defs, qualify(fn, id.Name))
							}
						}
					}
					// sprintf-family calls write their destination buffer
					if stringWriters[c.Fun] && !shadowed && len(c.Args) > 0 {
						if base := rootIdent(c.Args[0]); base != "" {
							info.defs = append(info.defs, qualify(fn, base))
						}
					}
				}
				return true
			})
		}

		switch st := s.(type) {
		case *csrc.DeclStmt:
			info.defs = append(info.defs, qualify(fn, st.Name))
			addUses(st.Init)
			if st.ArrayLen != nil {
				addUses(st.ArrayLen)
			}
			for _, e := range st.InitList {
				addUses(e)
			}
		case *csrc.AssignStmt:
			if base := rootIdent(st.LHS); base != "" {
				info.defs = append(info.defs, qualify(fn, base))
			}
			addUses(st.LHS) // index expressions read their subscripts
			addUses(st.RHS)
		case *csrc.ExprStmt:
			addUses(st.X)
		case *csrc.IfStmt:
			addUses(st.Cond)
			visitBlock(st.Then, st, fn)
			visitBlock(st.Else, st, fn)
		case *csrc.ForStmt:
			if st.Init != nil {
				visit(st.Init, st, fn)
			}
			addUses(st.Cond)
			if st.Post != nil {
				visit(st.Post, st, fn)
			}
			visitBlock(st.Body, st, fn)
		case *csrc.WhileStmt:
			addUses(st.Cond)
			visitBlock(st.Body, st, fn)
		case *csrc.ReturnStmt:
			addUses(st.X)
		case *csrc.Block:
			visitBlock(st, st, fn)
		}
	}

	for _, g := range m.file.Globals {
		visit(g, nil, "")
	}
	for _, fn := range m.file.Funcs {
		keepAll := false
		for _, k := range m.opts.KeepFuncs {
			if k == fn.Name {
				keepAll = true
			}
		}
		visitBlock(fn.Body, nil, fn.Name)
		if keepAll {
			for _, id := range m.order {
				if m.infos[id].fn == fn.Name {
					m.infos[id].isIO = true
				}
			}
		}
	}
}

// collectDecls gathers declared names in a block tree.
func collectDecls(b *csrc.Block, names map[string]bool) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *csrc.DeclStmt:
			names[st.Name] = true
		case *csrc.Block:
			collectDecls(st, names)
		case *csrc.IfStmt:
			collectDecls(st.Then, names)
			collectDecls(st.Else, names)
		case *csrc.ForStmt:
			if d, ok := st.Init.(*csrc.DeclStmt); ok {
				names[d.Name] = true
			}
			collectDecls(st.Body, names)
		case *csrc.WhileStmt:
			collectDecls(st.Body, names)
		}
	}
}

// rootIdent returns the base variable of an lvalue (a, a[i], *a).
func rootIdent(e csrc.Expr) string {
	switch x := e.(type) {
	case *csrc.Ident:
		return x.Name
	case *csrc.IndexExpr:
		return rootIdent(x.X)
	case *csrc.UnaryExpr:
		return rootIdent(x.X)
	default:
		return ""
	}
}

// seed marks the I/O statements themselves.
func (m *marker) seed() {
	for _, id := range m.order {
		if m.infos[id].isIO {
			m.mark(m.infos[id])
		}
	}
}

// mark marks a statement and propagates its dependents.
func (m *marker) mark(info *stmtInfo) {
	if info.marked {
		return
	}
	info.marked = true
	if info.fn != "" {
		m.markedFns[info.fn] = true
	}
	for _, v := range info.uses {
		m.markedVars[v] = true
	}
	for _, v := range info.defs {
		m.markedVars[v] = true
	}
}

// fixpoint runs the marking loop until no statement changes: definitions
// of marked variables are marked (backward traversal), contextual parents
// are marked, and calls to functions containing I/O are marked.
func (m *marker) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, id := range m.order {
			info := m.infos[id]
			if !info.marked {
				// definitions feeding marked variables
				for _, d := range info.defs {
					if m.markedVars[d] {
						m.mark(info)
						changed = true
						break
					}
				}
				if info.marked {
					continue
				}
				// calls into functions that contain marked statements
				for _, c := range info.callees {
					if m.markedFns[c] {
						m.mark(info)
						changed = true
						break
					}
				}
				continue
			}
			// contextual parent of a marked statement
			if info.parent != nil {
				pinfo := m.infos[info.parent.Base().ID]
				if pinfo != nil && !pinfo.marked {
					m.mark(pinfo)
					changed = true
				}
			}
		}
	}
}

// finishControlFlow keeps return/break/continue statements whose ancestor
// chain is fully marked (dropping them would change kernel control flow).
func (m *marker) finishControlFlow() {
	for _, id := range m.order {
		info := m.infos[id]
		switch info.stmt.(type) {
		case *csrc.ReturnStmt, *csrc.BreakStmt, *csrc.ContinueStmt:
		default:
			continue
		}
		if info.marked {
			continue
		}
		keep := true
		for p := info.parent; p != nil; {
			pi := m.infos[p.Base().ID]
			if pi == nil {
				break
			}
			if !pi.marked {
				keep = false
				break
			}
			p = pi.parent
		}
		if keep {
			if info.fn == "" || m.markedFns[info.fn] {
				m.mark(info)
			}
		}
	}
}

// reconstruct builds the kernel AST from marked statements.
func (m *marker) reconstruct() *csrc.File {
	out := &csrc.File{Defines: m.file.Defines}
	for _, g := range m.file.Globals {
		if info := m.infos[g.ID]; info != nil && info.marked {
			out.Globals = append(out.Globals, g)
		}
	}
	for _, fn := range m.file.Funcs {
		if fn.Name != "main" && !m.markedFns[fn.Name] {
			continue
		}
		nf := &csrc.FuncDecl{RetType: fn.RetType, Name: fn.Name, Params: fn.Params}
		nf.Body = m.filterBlock(fn.Body)
		out.Funcs = append(out.Funcs, nf)
	}
	return out
}

func (m *marker) isMarked(s csrc.Stmt) bool {
	if s == nil {
		return false
	}
	info := m.infos[s.Base().ID]
	return info != nil && info.marked
}

func (m *marker) filterBlock(b *csrc.Block) *csrc.Block {
	if b == nil {
		return nil
	}
	nb := &csrc.Block{StmtBase: b.StmtBase}
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *csrc.Block:
			inner := m.filterBlock(st)
			if len(inner.Stmts) > 0 {
				nb.Stmts = append(nb.Stmts, inner)
			}
		case *csrc.IfStmt:
			if !m.isMarked(st) {
				continue
			}
			ni := &csrc.IfStmt{StmtBase: st.StmtBase, Cond: st.Cond}
			ni.Then = m.filterBlock(st.Then)
			if st.Else != nil {
				e := m.filterBlock(st.Else)
				if len(e.Stmts) > 0 {
					ni.Else = e
				}
			}
			nb.Stmts = append(nb.Stmts, ni)
		case *csrc.ForStmt:
			if !m.isMarked(st) {
				continue
			}
			nf := &csrc.ForStmt{StmtBase: st.StmtBase, Init: st.Init, Cond: st.Cond, Post: st.Post}
			nf.Body = m.filterBlock(st.Body)
			nb.Stmts = append(nb.Stmts, nf)
		case *csrc.WhileStmt:
			if !m.isMarked(st) {
				continue
			}
			nw := &csrc.WhileStmt{StmtBase: st.StmtBase, Cond: st.Cond}
			nw.Body = m.filterBlock(st.Body)
			nb.Stmts = append(nb.Stmts, nw)
		default:
			if m.isMarked(st) {
				nb.Stmts = append(nb.Stmts, st)
			}
		}
	}
	return nb
}
