package server_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"tunio"
	"tunio/internal/cluster"
	"tunio/internal/core"
	"tunio/internal/server"
	"tunio/internal/train"
)

// smallTrainConfig is a fast-but-real training scale shared by the
// artifact and lazy paths below.
func smallTrainConfig(seed int64) tunio.TrainConfig {
	c := cluster.CoriHaswell(1, 8)
	return tunio.TrainConfig{
		Cluster:         c,
		Kernels:         core.DefaultSweepKernels(c.Procs()),
		ExtraRandomRuns: 2,
		StopperEpochs:   2,
		PickerEpochs:    2,
		StopperHorizon:  8,
		Seed:            seed,
	}
}

func newAgentServer(t *testing.T, opts server.Options) *httptest.Server {
	t.Helper()
	opts.Engine = tunio.NewEngine(tunio.EngineOptions{})
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// A tuniod started from pre-trained artifacts must serve curves
// bit-identical to the lazily-training path: loading an agent is a pure
// deserialization of the same trained state, never a retrain drift.
func TestServerArtifactAgentMatchesLazyTraining(t *testing.T) {
	tc := smallTrainConfig(5)

	// Train once through the pipeline, persisting artifacts.
	dir := t.TempDir()
	_, err := train.Run(context.Background(), train.Config{
		Space:           tc.Space,
		Cluster:         tc.Cluster,
		Kernels:         tc.Kernels,
		ExtraRandomRuns: tc.ExtraRandomRuns,
		StopperEpochs:   tc.StopperEpochs,
		PickerEpochs:    tc.PickerEpochs,
		StopperHorizon:  tc.StopperHorizon,
		Seed:            tc.Seed,
		ArtifactsDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	agent, err := tunio.LoadAgentArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}

	fromArtifacts := newAgentServer(t, server.Options{Agent: agent})
	lazy := newAgentServer(t, server.Options{Train: &tc})

	req := tinyJob(9)
	req.Pipeline = "tunio"
	var results [2]*server.JobResult
	for i, ts := range []*httptest.Server{fromArtifacts, lazy} {
		st, resp := submit(t, ts, req, "")
		if resp.StatusCode != 202 {
			t.Fatalf("server %d: submit = %d", i, resp.StatusCode)
		}
		final := waitTerminal(t, ts, st.ID)
		if final.State != "done" {
			t.Fatalf("server %d: job ended %q: %s", i, final.State, final.Error)
		}
		results[i] = final.Result
	}

	a, err := json.Marshal(results[0].Curve)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(results[1].Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("artifact-served curve differs from lazily-trained curve:\n%s\n%s", a, b)
	}
	if results[0].BestPerf != results[1].BestPerf || results[0].StoppedAt != results[1].StoppedAt {
		t.Fatalf("artifact-served result differs: best %v vs %v, stopped %d vs %d",
			results[0].BestPerf, results[1].BestPerf, results[0].StoppedAt, results[1].StoppedAt)
	}
}
