// Package server implements tuning-as-a-service: an HTTP/JSON front end
// over a shared tunio.Engine. Clients submit tuning jobs (a built-in
// workload name or C source, plus pipeline and budget), poll or stream
// progress, cancel, and read engine-wide cache statistics:
//
//	POST   /v1/jobs             submit a job            -> 202 + job status
//	GET    /v1/jobs             list jobs               -> 200 + status array
//	GET    /v1/jobs/{id}        job status (+result)    -> 200
//	GET    /v1/jobs/{id}/events SSE progress stream     -> text/event-stream
//	POST   /v1/jobs/{id}/cancel cancel a running job    -> 202
//	GET    /v1/stats            engine + cache stats    -> 200
//
// Tenancy is declared per request via the X-Tunio-Tenant header; the
// engine enforces the per-tenant concurrent-session quota, which the
// server maps to 429 Too Many Requests. All sessions share the engine's
// worker gate, kernel store, and stage cache — the whole point of serving
// from one process — while results stay bit-identical to solo runs.
//
// The package holds no package-level state (cmd/statecheck enforces
// this): every piece of shared state lives in the Server or the injected
// Engine, so tests can run many servers side by side.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"tunio"
	"tunio/internal/core"
	"tunio/internal/metrics"
)

// Options configure a Server.
type Options struct {
	// Engine runs the sessions; required.
	Engine *tunio.Engine
	// Agent, when non-nil, serves pipeline "tunio" jobs: each job gets a
	// private copy (agents are stateful). Typically loaded from a
	// tuniotrain artifacts directory via tunio.LoadAgentArtifacts. When
	// nil, the first such job triggers one offline training pass, cached
	// for the server's lifetime.
	Agent *tunio.TunIO
	// Train configures lazy agent training when Agent is nil. Nil trains
	// at the default scale with TrainSeed.
	Train *tunio.TrainConfig
	// TrainSeed seeds lazy agent training when Train is nil (default 1).
	TrainSeed int64
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// DefaultParallelism applies to jobs that do not set parallelism
	// (default 1: served jobs always use the batch engine, which is what
	// shares the engine caches).
	DefaultParallelism int
}

// Server is the HTTP handler. Create with New.
//
// The job-table lock is a read/write mutex held only around map access —
// never across a status snapshot, an SSE encode, or a network write — so
// an arbitrarily slow streaming client cannot stall submissions, listings,
// or other streams. SSE frames are assembled in pooled buffers and written
// with a single Write.
type Server struct {
	engine *tunio.Engine
	opts   Options
	mux    *http.ServeMux

	mu     sync.RWMutex
	jobs   map[string]*job
	nextID int

	// ssePool recycles frame-assembly buffers across SSE events; lives on
	// the Server (not at package level) so side-by-side test servers stay
	// independent and cmd/statecheck stays happy.
	ssePool sync.Pool

	agentOnce sync.Once
	agentBlob []byte
	agentErr  error
}

// job is one submitted tuning session.
type job struct {
	id      string
	tenant  string
	kernel  string // workload name or "source"
	online  bool   // drift-aware online session
	run     *tunio.Run
	created time.Time
}

// New returns a Server over the engine.
func New(opts Options) (*Server, error) {
	if opts.Engine == nil {
		return nil, fmt.Errorf("server: Options.Engine is required")
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	if opts.DefaultParallelism == 0 {
		opts.DefaultParallelism = 1
	}
	s := &Server{
		engine: opts.Engine,
		opts:   opts,
		jobs:   map[string]*job{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// JobRequest is the submit payload.
type JobRequest struct {
	// Workload names a built-in application model; Source submits C
	// source instead (exactly one of the two).
	Workload string `json:"workload,omitempty"`
	Source   string `json:"source,omitempty"`
	// Discover reduces Source to its I/O kernel before tuning.
	Discover bool `json:"discover,omitempty"`
	// Pipeline selects the stopper/picker wiring: "hstuner" (default,
	// plain GA), "heuristic" (5%/5-iteration stopper), or "tunio" (the
	// RL agents).
	Pipeline string `json:"pipeline,omitempty"`

	Nodes         int              `json:"nodes,omitempty"`
	ProcsPerNode  int              `json:"procs_per_node,omitempty"`
	PopSize       int              `json:"pop_size,omitempty"`
	MaxIterations int              `json:"max_iterations,omitempty"`
	Reps          int              `json:"reps,omitempty"`
	Seed          int64            `json:"seed,omitempty"`
	Parallelism   int              `json:"parallelism,omitempty"`
	NoTrace       bool             `json:"no_trace,omitempty"`
	Fix           map[string]int64 `json:"fix,omitempty"`

	// Drift attaches a time-varying machine schedule (regimes of
	// background load, degraded OSTs, and contention switching at
	// simulated timestamps).
	Drift *tunio.Drift `json:"drift,omitempty"`
	// Online runs the job as an online (drift-aware) session: service
	// windows with drift detection and incremental re-tuning. The events
	// stream then carries "window" and "retune" events instead of
	// "point".
	Online *OnlineRequest `json:"online,omitempty"`
}

// OnlineRequest configures an online session on the wire; zero values
// take the controller defaults.
type OnlineRequest struct {
	Windows    int     `json:"windows,omitempty"`
	WindowGap  float64 `json:"window_gap_s,omitempty"`
	Threshold  float64 `json:"threshold,omitempty"`
	Patience   int     `json:"patience,omitempty"`
	Neighbors  int     `json:"neighbors,omitempty"`
	Rounds     int     `json:"rounds,omitempty"`
	InitRounds int     `json:"init_rounds,omitempty"`
	Prune      bool    `json:"prune,omitempty"`
	GA         bool    `json:"ga,omitempty"`
	Oracle     bool    `json:"oracle,omitempty"`
}

// PointJSON is one tuning-curve observation on the wire.
type PointJSON struct {
	Iteration   int     `json:"iteration"`
	TimeMinutes float64 `json:"time_minutes"`
	IterPerf    float64 `json:"iter_perf_mbs"`
	BestPerf    float64 `json:"best_perf_mbs"`
}

func toPointJSON(p metrics.Point) PointJSON {
	return PointJSON{
		Iteration:   p.Iteration,
		TimeMinutes: p.TimeMinutes,
		IterPerf:    p.IterPerf,
		BestPerf:    p.BestPerf,
	}
}

// JobResult is the terminal payload of a finished job.
type JobResult struct {
	BestPerf     float64          `json:"best_perf_mbs"`
	Baseline     float64          `json:"baseline_mbs"`
	Speedup      float64          `json:"speedup"`
	StoppedAt    int              `json:"stopped_at"`
	StoppedEarly bool             `json:"stopped_early"`
	Evaluations  int              `json:"evaluations"`
	TotalMinutes float64          `json:"total_minutes"`
	BestConfig   map[string]int64 `json:"best_config"`
	BestChanged  []string         `json:"best_changed_from_default,omitempty"`
	Curve        []PointJSON      `json:"curve"`
	Engine       tunio.EngineInfo `json:"engine"`
	// Drift is the online session's full result (window series, re-tune
	// log, adaptation costs); absent for one-shot jobs.
	Drift *tunio.DriftResult `json:"drift,omitempty"`
}

// JobStatus is the status payload.
type JobStatus struct {
	ID      string     `json:"id"`
	Tenant  string     `json:"tenant,omitempty"`
	Kernel  string     `json:"kernel"`
	State   string     `json:"state"` // running | done | failed | canceled
	Points  int        `json:"points"`
	Error   string     `json:"error,omitempty"`
	Result  *JobResult `json:"result,omitempty"`
	Created time.Time  `json:"created"`
}

// status snapshots the job.
func (j *job) status() JobStatus {
	st := JobStatus{
		ID:      j.id,
		Tenant:  j.tenant,
		Kernel:  j.kernel,
		State:   "running",
		Points:  len(j.run.Points(0)),
		Created: j.created,
	}
	res, err, finished := j.run.Result()
	if !finished {
		return st
	}
	switch {
	case err == nil:
		st.State = "done"
		st.Result = resultJSON(res)
		if d, ok := j.run.Drift(); ok {
			st.Result.Drift = d
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		st.State = "canceled"
		st.Error = err.Error()
	default:
		st.State = "failed"
		st.Error = err.Error()
	}
	return st
}

func resultJSON(res *tunio.Result) *JobResult {
	out := &JobResult{
		BestPerf:     res.BestPerf,
		Baseline:     res.Curve.Baseline(),
		Speedup:      res.Curve.Speedup(),
		StoppedAt:    res.StoppedAt,
		StoppedEarly: res.StoppedEarly,
		Evaluations:  res.Evaluations,
		TotalMinutes: res.Curve.TotalMinutes(),
		BestConfig:   map[string]int64{},
		BestChanged:  res.Best.ChangedFromDefault(),
		Engine:       res.EngineInfo,
	}
	for _, p := range res.Best.Space() {
		out.BestConfig[p.Name] = res.Best.Value(p.Name)
	}
	for _, p := range res.Curve {
		out.Curve = append(out.Curve, toPointJSON(p))
	}
	return out
}

// agent returns a private copy of the served RL agent, training it on
// first use when none was injected.
func (s *Server) agent() (*tunio.TunIO, error) {
	s.agentOnce.Do(func() {
		a := s.opts.Agent
		if a == nil {
			tc := s.opts.Train
			if tc == nil {
				seed := s.opts.TrainSeed
				if seed == 0 {
					seed = 1
				}
				tc = &tunio.TrainConfig{Seed: seed}
			}
			var err error
			a, err = tunio.Train(*tc)
			if err != nil {
				s.agentErr = fmt.Errorf("training agent: %w", err)
				return
			}
		}
		s.agentBlob, s.agentErr = json.Marshal(a)
	})
	if s.agentErr != nil {
		return nil, s.agentErr
	}
	clone := &tunio.TunIO{Stopper: &core.EarlyStopper{}, Picker: &core.SmartPicker{}}
	if err := json.Unmarshal(s.agentBlob, clone); err != nil {
		return nil, err
	}
	return clone, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding job: %w", err))
		return
	}
	spec := tunio.JobSpec{
		Workload:      req.Workload,
		Source:        req.Source,
		Discover:      req.Discover,
		Tenant:        r.Header.Get("X-Tunio-Tenant"),
		Nodes:         req.Nodes,
		ProcsPerNode:  req.ProcsPerNode,
		PopSize:       req.PopSize,
		MaxIterations: req.MaxIterations,
		Reps:          req.Reps,
		Seed:          req.Seed,
		Parallelism:   req.Parallelism,
		NoTrace:       req.NoTrace,
		Fix:           req.Fix,
		Drift:         req.Drift,
	}
	if o := req.Online; o != nil {
		spec.Online = &tunio.OnlineSpec{
			Windows:    o.Windows,
			WindowGap:  o.WindowGap,
			Threshold:  o.Threshold,
			Patience:   o.Patience,
			Neighbors:  o.Neighbors,
			Rounds:     o.Rounds,
			InitRounds: o.InitRounds,
			Prune:      o.Prune,
			GA:         o.GA,
			Oracle:     o.Oracle,
		}
	}
	if spec.Parallelism == 0 {
		spec.Parallelism = s.opts.DefaultParallelism
	}
	switch req.Pipeline {
	case "", "hstuner":
		// plain pipeline: no stopper, no picker
	case "heuristic":
		spec.Heuristic = true
	case "tunio":
		agent, err := s.agent()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		spec.Agent = agent
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown pipeline %q (want hstuner, heuristic, or tunio)", req.Pipeline))
		return
	}

	// The session must outlive this request: it is canceled through the
	// cancel endpoint (or engine shutdown), not by the submit connection
	// closing.
	run, err := s.engine.Tune(context.Background(), spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, tunio.ErrQuotaExceeded) {
			code = http.StatusTooManyRequests
		}
		httpError(w, code, err)
		return
	}
	kernel := req.Workload
	if kernel == "" {
		kernel = "source"
	}
	s.mu.Lock()
	s.nextID++
	j := &job{
		id:      "job-" + strconv.Itoa(s.nextID),
		tenant:  spec.Tenant,
		kernel:  kernel,
		online:  spec.Online != nil,
		run:     run,
		created: time.Now().UTC(),
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *job {
	s.mu.RLock()
	j := s.jobs[r.PathValue("id")]
	s.mu.RUnlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant, filter := r.URL.Query().Get("tenant"), r.URL.Query().Has("tenant")
	s.mu.RLock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if !filter || j.tenant == tenant {
			all = append(all, j)
		}
	}
	s.mu.RUnlock()
	sort.Slice(all, func(i, k int) bool { return numericID(all[i].id) < numericID(all[k].id) })
	out := make([]JobStatus, len(all))
	for i, j := range all {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

func numericID(id string) int {
	n, _ := strconv.Atoi(id[len("job-"):])
	return n
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.run.Cancel()
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleEvents streams the job's progress as server-sent events: every
// recorded event replays first (so late subscribers see the full
// history), live events follow in order, and a terminal "done" event
// carries the final status. One-shot jobs stream tuning-curve points:
//
//	event: point
//	data: {"iteration":0,"time_minutes":…}
//
//	event: done
//	data: {"id":"job-1","state":"done",…}
//
// Online jobs stream service windows and re-tune announcements instead:
//
//	event: window
//	data: {"window":0,"perf_mbs":…}
//
//	event: retune
//	data: {"window":7,"reason":"bandwidth below expected profile…",…}
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	if j.online {
		for ev := range j.run.OnlineEvents(r.Context()) {
			name, payload := "window", any(ev.Window)
			if ev.Retune != nil {
				name, payload = "retune", any(ev.Retune)
			}
			if err := s.writeSSE(w, name, payload); err != nil {
				return
			}
			flusher.Flush()
		}
	} else {
		for p := range j.run.Events(r.Context()) {
			if err := s.writeSSE(w, "point", toPointJSON(p)); err != nil {
				return
			}
			flusher.Flush()
		}
	}
	if r.Context().Err() != nil {
		return // client went away mid-stream
	}
	// Events closed because the run finished and every point was sent.
	s.writeSSE(w, "done", j.status())
	flusher.Flush()
}

// writeSSE assembles one SSE frame in a pooled buffer and writes it with
// a single Write. No server lock is held here: a slow reader blocks only
// its own stream. The frame layout ("event: …\ndata: …\n\n") is
// byte-identical to the former fmt.Fprintf form — json.Encoder terminates
// the data line's JSON with the first of the two newlines.
func (s *Server) writeSSE(w http.ResponseWriter, event string, payload any) error {
	buf, _ := s.ssePool.Get().(*bytes.Buffer)
	if buf == nil {
		buf = new(bytes.Buffer)
	}
	buf.Reset()
	buf.WriteString("event: ")
	buf.WriteString(event)
	buf.WriteString("\ndata: ")
	if err := json.NewEncoder(buf).Encode(payload); err != nil {
		s.ssePool.Put(buf)
		return err
	}
	buf.WriteByte('\n')
	_, err := w.Write(buf.Bytes())
	s.ssePool.Put(buf)
	return err
}

// StatsResponse is the GET /v1/stats payload: the engine's aggregated
// counters plus derived hit rates and the server's job-state census. The
// cache sections quantify the cross-session sharing win: kernel-store
// hits are whole trace recordings skipped; stage hits are plan/lower
// stages served from another session's (or genome's) work.
type StatsResponse struct {
	tunio.EngineStats
	StageHitRate  float64        `json:"stage_hit_rate"`
	PlanHitRate   float64        `json:"plan_hit_rate"`
	WireHitRate   float64        `json:"wire_hit_rate"`
	KernelHitRate float64        `json:"kernel_hit_rate"`
	MemoHitRate   float64        `json:"memo_hit_rate"`
	Jobs          map[string]int `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.engine.Stats()
	out := StatsResponse{
		EngineStats:   es,
		StageHitRate:  es.Stage.HitRate(),
		PlanHitRate:   es.Stage.PlanHitRate(),
		WireHitRate:   es.Stage.WireHitRate(),
		KernelHitRate: es.Kernels.HitRate(),
		Jobs:          map[string]int{},
	}
	if t := es.MemoHits + es.MemoMisses; t > 0 {
		out.MemoHitRate = float64(es.MemoHits) / float64(t)
	}
	s.mu.RLock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.RUnlock()
	for _, j := range jobs {
		out.Jobs[j.status().State]++
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, code int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
