package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tunio"
	"tunio/internal/server"
)

// tinyJob is a small macsio job that finishes in well under a second.
func tinyJob(seed int64) server.JobRequest {
	return server.JobRequest{
		Workload:      "macsio",
		Nodes:         2,
		ProcsPerNode:  8,
		PopSize:       16,
		MaxIterations: 12,
		Reps:          1,
		Seed:          seed,
		Parallelism:   2,
	}
}

func newTestServer(t *testing.T, opts tunio.EngineOptions) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Options{Engine: tunio.NewEngine(opts)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func submit(t *testing.T, ts *httptest.Server, req server.JobRequest, tenant string) (server.JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		hr.Header.Set("X-Tunio-Tenant", tenant)
	}
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) server.JobStatus {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls until the job leaves the running state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after 30s", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The submit/status lifecycle: a job is accepted, runs, and lands "done"
// with a full result payload.
func TestServerJobLifecycle(t *testing.T) {
	ts := newTestServer(t, tunio.EngineOptions{})
	st, resp := submit(t, ts, tinyJob(3), "acme")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.Tenant != "acme" || st.Kernel != "macsio" {
		t.Fatalf("submit status = %+v", st)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != "done" {
		t.Fatalf("state = %q (%s), want done", final.State, final.Error)
	}
	r := final.Result
	if r == nil {
		t.Fatal("done job has no result")
	}
	if len(r.Curve) != final.Points || len(r.Curve) == 0 {
		t.Fatalf("curve has %d points, status says %d", len(r.Curve), final.Points)
	}
	if r.BestPerf < r.Baseline || r.Speedup < 1 {
		t.Fatalf("best %.1f < baseline %.1f (speedup %.2f)", r.BestPerf, r.Baseline, r.Speedup)
	}
	if len(r.BestConfig) == 0 {
		t.Fatal("result has no best configuration")
	}
	if !r.Engine.TraceReady {
		t.Fatalf("trace replay not active: %+v", r.Engine)
	}

	// The job shows up in the listing, and tenant filtering works.
	var list []server.JobStatus
	for path, want := range map[string]int{"/v1/jobs": 1, "/v1/jobs?tenant=acme": 1, "/v1/jobs?tenant=ghost": 0} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(list) != want {
			t.Fatalf("GET %s returned %d jobs, want %d", path, len(list), want)
		}
	}
}

// Cancel stops a running job; its terminal state is "canceled".
func TestServerCancel(t *testing.T) {
	ts := newTestServer(t, tunio.EngineOptions{})
	req := tinyJob(3)
	req.MaxIterations = 500 // long enough that we always beat it to the finish
	st, _ := submit(t, ts, req, "")

	// Let at least the baseline land so we cancel a genuinely running job.
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, st.ID).Points == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no progress after 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", resp.StatusCode)
	}
	if final := waitTerminal(t, ts, st.ID); final.State != "canceled" {
		t.Fatalf("state after cancel = %q, want canceled", final.State)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// The SSE stream delivers every curve point, in order, then a terminal
// done event whose payload matches the status endpoint.
func TestServerSSEDeliversEveryPointInOrder(t *testing.T) {
	ts := newTestServer(t, tunio.EngineOptions{})
	st, _ := submit(t, ts, tinyJob(3), "")

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, resp.Body)
	if len(events) < 2 || events[len(events)-1].event != "done" {
		t.Fatalf("stream ended with %d events, last %+v", len(events), events[len(events)-1])
	}
	var points []server.PointJSON
	for _, ev := range events[:len(events)-1] {
		if ev.event != "point" {
			t.Fatalf("unexpected event %q mid-stream", ev.event)
		}
		var p server.PointJSON
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatal(err)
		}
		points = append(points, p)
	}
	var final server.JobStatus
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("done event carries state %q (%s)", final.State, final.Error)
	}
	// Every point, in order: the stream must equal the stored curve.
	if len(points) != len(final.Result.Curve) {
		t.Fatalf("streamed %d points, result curve has %d", len(points), len(final.Result.Curve))
	}
	for i, p := range points {
		if p != final.Result.Curve[i] {
			t.Fatalf("streamed point %d = %+v, curve has %+v", i, p, final.Result.Curve[i])
		}
		if i > 0 && p.Iteration < points[i-1].Iteration {
			t.Fatalf("points out of order at %d: %d after %d", i, p.Iteration, points[i-1].Iteration)
		}
	}

	// A late subscriber to a finished job replays the whole history too.
	resp2, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay := readSSE(t, resp2.Body)
	if len(replay) != len(events) {
		t.Fatalf("late subscriber got %d events, live one %d", len(replay), len(events))
	}
}

// Two sessions run concurrently on one server and both finish clean
// (exercised under -race in CI).
func TestServerConcurrentSessions(t *testing.T) {
	ts := newTestServer(t, tunio.EngineOptions{Workers: 4})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			st, resp := submit(t, ts, tinyJob(seed), fmt.Sprintf("tenant-%d", seed))
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit = %d", resp.StatusCode)
				return
			}
			if final := waitTerminal(t, ts, st.ID); final.State != "done" {
				t.Errorf("seed %d: state %q (%s)", seed, final.State, final.Error)
			}
		}(int64(3 + i))
	}
	wg.Wait()
}

// A tenant at its quota gets 429; other tenants are unaffected; the slot
// frees on cancel.
func TestServerQuota(t *testing.T) {
	ts := newTestServer(t, tunio.EngineOptions{TenantQuota: 1})
	long := tinyJob(3)
	long.MaxIterations = 500
	st, resp := submit(t, ts, long, "acme")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	if _, resp := submit(t, ts, tinyJob(4), "acme"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", resp.StatusCode)
	}
	if beta, resp := submit(t, ts, tinyJob(4), "beta"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant = %d, want 202", resp.StatusCode)
	} else if final := waitTerminal(t, ts, beta.ID); final.State != "done" {
		t.Fatalf("beta job state %q", final.State)
	}
	// Cancel frees the quota slot.
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	waitTerminal(t, ts, st.ID)
	if again, resp := submit(t, ts, tinyJob(5), "acme"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-cancel submit = %d, want 202", resp.StatusCode)
	} else {
		waitTerminal(t, ts, again.ID)
	}
}

// A served tune is bit-identical to calling tunio.Tune directly with the
// same options: every curve float and the best configuration survive the
// HTTP/JSON round trip exactly (encoding/json emits shortest-round-trip
// float64s).
func TestServerServedCurveMatchesDirectTune(t *testing.T) {
	direct, err := tunio.Tune(tunio.TuneOptions{
		Workload: "macsio", Nodes: 2, ProcsPerNode: 8,
		PopSize: 16, MaxIterations: 12, Reps: 1, Seed: 9, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, tunio.EngineOptions{})
	st, _ := submit(t, ts, tinyJob(9), "")
	final := waitTerminal(t, ts, st.ID)
	if final.State != "done" {
		t.Fatalf("state %q (%s)", final.State, final.Error)
	}
	r := final.Result
	if len(r.Curve) != len(direct.Curve) {
		t.Fatalf("served curve has %d points, direct %d", len(r.Curve), len(direct.Curve))
	}
	for i, p := range r.Curve {
		d := direct.Curve[i]
		if p.Iteration != d.Iteration || p.TimeMinutes != d.TimeMinutes ||
			p.IterPerf != d.IterPerf || p.BestPerf != d.BestPerf {
			t.Fatalf("point %d: served %+v, direct %+v", i, p, d)
		}
	}
	if r.BestPerf != direct.BestPerf || r.StoppedAt != direct.StoppedAt {
		t.Fatalf("served best %.6f@%d, direct %.6f@%d",
			r.BestPerf, r.StoppedAt, direct.BestPerf, direct.StoppedAt)
	}
	for _, p := range direct.Best.Space() {
		if got := r.BestConfig[p.Name]; got != direct.Best.Value(p.Name) {
			t.Fatalf("best config %s = %d, direct %d", p.Name, got, direct.Best.Value(p.Name))
		}
	}
}

// Cross-session cache sharing is visible through the API: the second job
// on the same kernel skips recording (kernel-store hit) and rides the
// first session's stage plans, and /v1/stats aggregates it all.
func TestServerCrossSessionSharingAndStats(t *testing.T) {
	ts := newTestServer(t, tunio.EngineOptions{})
	first, _ := submit(t, ts, tinyJob(3), "acme")
	if st := waitTerminal(t, ts, first.ID); st.State != "done" {
		t.Fatalf("first job: %q (%s)", st.State, st.Error)
	} else if st.Result.Engine.KernelStoreHit {
		t.Fatal("first job cannot hit the kernel store")
	}
	second, _ := submit(t, ts, tinyJob(9), "beta")
	st := waitTerminal(t, ts, second.ID)
	if st.State != "done" {
		t.Fatalf("second job: %q (%s)", st.State, st.Error)
	}
	if !st.Result.Engine.KernelStoreHit {
		t.Fatal("second job did not hit the kernel store")
	}
	if rate := st.Result.Engine.StageStats.HitRate(); rate <= 0.5 {
		t.Fatalf("second session stage hit rate = %.2f, want > 0.5", rate)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.SessionsDone != 2 || stats.Jobs["done"] != 2 {
		t.Fatalf("stats sessions done = %d, jobs = %v", stats.SessionsDone, stats.Jobs)
	}
	if stats.Kernels.Kernels != 1 || stats.Kernels.Hits != 1 {
		t.Fatalf("kernel store stats = %+v", stats.Kernels)
	}
	if stats.KernelHitRate != 0.5 {
		t.Fatalf("kernel hit rate = %.2f, want 0.5 (1 hit / 2 lookups)", stats.KernelHitRate)
	}
	if stats.StageHitRate <= 0 || stats.StageHitRate >= 1 {
		t.Fatalf("aggregate stage hit rate = %.2f", stats.StageHitRate)
	}
}

// Request validation and routing errors map to the right status codes.
func TestServerErrors(t *testing.T) {
	ts := newTestServer(t, tunio.EngineOptions{})
	post := func(body string) int {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	for body, want := range map[string]int{
		"{not json":            http.StatusBadRequest,
		`{"bogus_field": 1}`:   http.StatusBadRequest,
		`{"workload": "nope"}`: http.StatusBadRequest,
		`{"workload": "vpic", "source": "int main(){}"}`: http.StatusBadRequest,
		`{"workload": "vpic", "pipeline": "alien"}`:      http.StatusBadRequest,
		`{}`: http.StatusBadRequest,
	} {
		if got := post(body); got != want {
			t.Errorf("POST %s = %d, want %d", body, got, want)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/stats", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats = %d, want 405", resp.StatusCode)
	}
}
