package server_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"tunio"
	"tunio/internal/server"
)

// onlineJob is a small drift-aware flash job: the machine degrades at
// t=25, so the controller must re-tune mid-run.
func onlineJob(seed int64) server.JobRequest {
	return server.JobRequest{
		Workload:     "flash",
		Nodes:        2,
		ProcsPerNode: 8,
		Reps:         1,
		Seed:         seed,
		Parallelism:  2,
		Drift: &tunio.Drift{Seed: 9, Regimes: []tunio.Regime{
			{Start: 25, OSTLoad: 0.5, NICLoad: 0.3, Contention: 3},
		}},
		Online: &server.OnlineRequest{
			Windows: 10, WindowGap: 10,
			Neighbors: 4, Rounds: 2, InitRounds: 3,
			Prune: true, Oracle: true,
		},
	}
}

// An online job streams "window" and "retune" SSE events and lands a
// result carrying the full drift payload.
func TestServerOnlineJobStreamsWindowsAndRetunes(t *testing.T) {
	ts := newTestServer(t, tunio.EngineOptions{})
	st, resp := submit(t, ts, onlineJob(5), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}

	sresp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	events := readSSE(t, sresp.Body)
	if len(events) == 0 || events[len(events)-1].event != "done" {
		t.Fatalf("stream did not terminate in done: %+v", events)
	}

	var windows []tunio.WindowPoint
	var retunes []tunio.RetuneEvent
	for _, ev := range events[:len(events)-1] {
		switch ev.event {
		case "window":
			var w tunio.WindowPoint
			if err := json.Unmarshal([]byte(ev.data), &w); err != nil {
				t.Fatal(err)
			}
			windows = append(windows, w)
		case "retune":
			var r tunio.RetuneEvent
			if err := json.Unmarshal([]byte(ev.data), &r); err != nil {
				t.Fatal(err)
			}
			retunes = append(retunes, r)
		default:
			t.Fatalf("unexpected event %q mid-stream", ev.event)
		}
	}
	if len(windows) != 10 {
		t.Fatalf("streamed %d windows, want 10", len(windows))
	}
	for i, w := range windows {
		if w.Window != i {
			t.Fatalf("window events out of order: got %d at position %d", w.Window, i)
		}
	}
	if len(retunes) == 0 {
		t.Fatal("no retune event through a regime change")
	}
	if retunes[0].Reason == "" || retunes[0].Mode != "local" {
		t.Fatalf("malformed retune event %+v", retunes[0])
	}

	var final server.JobStatus
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Result == nil || final.Result.Drift == nil {
		t.Fatalf("done event lacks drift payload: %+v", final)
	}
	d := final.Result.Drift
	if len(d.Windows) != 10 || len(d.Retunes) != len(retunes) {
		t.Fatalf("drift payload has %d windows / %d retunes, streamed 10 / %d",
			len(d.Windows), len(d.Retunes), len(retunes))
	}
	if d.Windows[len(d.Windows)-1].OraclePerfMBs <= 0 {
		t.Fatal("oracle tracking requested but missing from windows")
	}
	if d.EvalSimSeconds <= 0 || d.Evaluations == 0 {
		t.Fatalf("adaptation cost accounting missing: %+v", d)
	}
}

// Unknown online fields are rejected like any other unknown field.
func TestServerOnlineUnknownField(t *testing.T) {
	ts := newTestServer(t, tunio.EngineOptions{})
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"flash","online":{"winows":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo'd online field = %d, want 400", resp.StatusCode)
	}
}
