package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tunio"
	"tunio/internal/server"
)

// stalledWriter is a ResponseWriter whose first body write blocks until
// released — a deterministic stand-in for an SSE subscriber that stops
// reading with the server's frame write in flight.
type stalledWriter struct {
	hdr     http.Header
	once    sync.Once
	first   chan struct{} // closed when a body write is attempted
	release chan struct{} // writes proceed once closed
}

func newStalledWriter() *stalledWriter {
	return &stalledWriter{hdr: make(http.Header), first: make(chan struct{}), release: make(chan struct{})}
}

func (w *stalledWriter) Header() http.Header { return w.hdr }
func (w *stalledWriter) WriteHeader(int)     {}
func (w *stalledWriter) Flush()              {}
func (w *stalledWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.first) })
	<-w.release
	return len(p), nil
}

// TestServerSSESlowReaderDoesNotBlockAPI pins the no-lock-across-write
// rule: with one events stream frozen mid-frame (its writer blocked, as a
// stalled client causes once the socket buffer fills), submissions, status
// reads, listings, and stats must all still complete. If any handler held
// the job-table mutex across SSE encoding or writing, this test would hang
// rather than fail fast — so every probe carries its own deadline.
func TestServerSSESlowReaderDoesNotBlockAPI(t *testing.T) {
	srv, err := server.New(server.Options{Engine: tunio.NewEngine(tunio.EngineOptions{})})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Finish one job so its events stream has history to replay.
	st, resp := submit(t, ts, tinyJob(3), "acme")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if final := waitTerminal(t, ts, st.ID); final.State != "done" {
		t.Fatalf("state = %q (%s)", final.State, final.Error)
	}

	// Freeze an events stream on its first frame.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw := newStalledWriter()
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		req := httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/events", nil).WithContext(ctx)
		srv.ServeHTTP(sw, req)
	}()
	select {
	case <-sw.first:
	case <-time.After(10 * time.Second):
		t.Fatal("events stream never attempted a write")
	}

	// With the stream frozen, the rest of the API must stay live.
	probes := map[string]func() int{
		"status": func() int {
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs/"+st.ID, nil))
			return w.Code
		},
		"list": func() int {
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs", nil))
			return w.Code
		},
		"stats": func() int {
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, httptest.NewRequest("GET", "/v1/stats", nil))
			return w.Code
		},
		"submit": func() int {
			body, err := json.Marshal(tinyJob(9))
			if err != nil {
				t.Error(err)
				return 0
			}
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body)))
			return w.Code
		},
	}
	for name, probe := range probes {
		codeCh := make(chan int, 1)
		go func() { codeCh <- probe() }()
		select {
		case code := <-codeCh:
			if code != http.StatusOK && code != http.StatusAccepted {
				t.Errorf("%s while a reader stalls = %d", name, code)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s blocked behind a stalled SSE reader", name)
		}
	}

	// Release the stalled stream and let it drain to completion.
	close(sw.release)
	select {
	case <-streamDone:
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("released events stream never finished")
	}
}
