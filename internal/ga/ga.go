// Package ga is a generic genetic-algorithm engine, the Go equivalent of the
// DEAP framework TunIO's reference tuning pipeline is built on (§III-A).
//
// Genomes are fixed-length vectors of small integers, each gene indexing
// into a discrete value list (the tuner maps genes to I/O-stack parameter
// values). The engine implements the paper's pipeline composition: elitism
// (the best configuration found so far is always carried forward) combined
// with tournament selection where three individuals are drawn at random and
// the best two are carried forward as parents, which counteracts elitism's
// tendency to over-specialize the population.
//
// Impact-first tuning plugs in through the active-gene mask: genes outside
// the selected subset are pinned to their current best-known values and are
// neither crossed nor mutated, shrinking the explored space.
package ga

import (
	"fmt"
	"math/rand"
)

// Genome is a vector of value indices, one per tuned parameter.
type Genome []int

// Clone returns a copy of g.
func (g Genome) Clone() Genome {
	return append(Genome(nil), g...)
}

// Individual pairs a genome with its measured fitness.
type Individual struct {
	Genome    Genome
	Fitness   float64
	Evaluated bool
}

// Selection identifies a parent-selection strategy.
type Selection string

// Supported selection strategies. TournamentKeep2 is the paper's choice;
// Roulette exists for the ablation benchmarks.
const (
	TournamentKeep2 Selection = "tournament3keep2"
	Roulette        Selection = "roulette"
)

// Config configures an Engine.
type Config struct {
	GenomeLen     int
	Arity         func(gene int) int // number of values gene may take (>= 1)
	PopSize       int                // default 16
	CrossoverProb float64            // per-pair probability (default 0.9)
	MutationProb  float64            // per-active-gene probability (default 0.15)
	Elites        int                // individuals carried unchanged (default 1)
	Selection     Selection          // default TournamentKeep2

	// InitGenome, when non-nil, seeds the initial population around this
	// genome: each individual starts from it with each gene resampled with
	// probability InitMutation (default 0.35). Tuning pipelines use this
	// to start exploration from the current (default) configuration
	// instead of uniform random, giving the gradual convergence real
	// tuners exhibit. Nil keeps uniform-random initialization.
	InitGenome   Genome
	InitMutation float64
}

func (c *Config) fillDefaults() {
	if c.PopSize == 0 {
		c.PopSize = 16
	}
	if c.CrossoverProb == 0 {
		c.CrossoverProb = 0.9
	}
	if c.MutationProb == 0 {
		c.MutationProb = 0.15
	}
	if c.Elites == 0 {
		c.Elites = 1
	}
	if c.Selection == "" {
		c.Selection = TournamentKeep2
	}
}

// Engine evolves a population generation by generation. The caller owns
// evaluation: read Population, assign fitnesses with SetFitness, then call
// NextGeneration.
type Engine struct {
	cfg        Config
	rng        *rand.Rand
	pop        []Individual
	active     []bool // active-gene mask (impact-first subset)
	pinned     Genome // values used for inactive genes
	best       Individual
	hasBest    bool
	generation int
}

// New builds an engine with a random initial population.
func New(cfg Config, rng *rand.Rand) (*Engine, error) {
	if cfg.GenomeLen <= 0 {
		return nil, fmt.Errorf("ga: GenomeLen must be positive, got %d", cfg.GenomeLen)
	}
	if cfg.Arity == nil {
		return nil, fmt.Errorf("ga: Arity function is required")
	}
	cfg.fillDefaults()
	if cfg.Elites >= cfg.PopSize {
		return nil, fmt.Errorf("ga: Elites (%d) must be < PopSize (%d)", cfg.Elites, cfg.PopSize)
	}
	for g := 0; g < cfg.GenomeLen; g++ {
		if cfg.Arity(g) < 1 {
			return nil, fmt.Errorf("ga: gene %d has arity %d, want >= 1", g, cfg.Arity(g))
		}
	}
	if cfg.InitGenome != nil {
		if len(cfg.InitGenome) != cfg.GenomeLen {
			return nil, fmt.Errorf("ga: InitGenome length %d, want %d", len(cfg.InitGenome), cfg.GenomeLen)
		}
		for gi, v := range cfg.InitGenome {
			if v < 0 || v >= cfg.Arity(gi) {
				return nil, fmt.Errorf("ga: InitGenome gene %d = %d out of range %d", gi, v, cfg.Arity(gi))
			}
		}
		if cfg.InitMutation == 0 {
			cfg.InitMutation = 0.35
		}
	}
	e := &Engine{cfg: cfg, rng: rng}
	e.active = make([]bool, cfg.GenomeLen)
	for i := range e.active {
		e.active[i] = true
	}
	e.pinned = make(Genome, cfg.GenomeLen)
	e.pop = make([]Individual, cfg.PopSize)
	for i := range e.pop {
		if cfg.InitGenome != nil {
			g := cfg.InitGenome.Clone()
			for gi := range g {
				if rng.Float64() < cfg.InitMutation {
					g[gi] = e.perturb(g[gi], cfg.Arity(gi), 1)
				}
			}
			e.pop[i] = Individual{Genome: g}
		} else {
			e.pop[i] = Individual{Genome: e.randomGenome()}
		}
	}
	return e, nil
}

func (e *Engine) randomGenome() Genome {
	g := make(Genome, e.cfg.GenomeLen)
	for i := range g {
		if e.active[i] {
			g[i] = e.rng.Intn(e.cfg.Arity(i))
		} else {
			g[i] = e.pinned[i]
		}
	}
	return g
}

// Generation returns the current generation number (0 before the first
// NextGeneration call).
func (e *Engine) Generation() int { return e.generation }

// SetGenome replaces individual i's genome, clearing its fitness. Tuning
// pipelines use it to seed known configurations (e.g. the library defaults)
// into the initial population.
func (e *Engine) SetGenome(i int, g Genome) error {
	if i < 0 || i >= len(e.pop) {
		return fmt.Errorf("ga: SetGenome index %d out of range %d", i, len(e.pop))
	}
	if len(g) != e.cfg.GenomeLen {
		return fmt.Errorf("ga: SetGenome genome length %d, want %d", len(g), e.cfg.GenomeLen)
	}
	for gi, v := range g {
		if v < 0 || v >= e.cfg.Arity(gi) {
			return fmt.Errorf("ga: SetGenome gene %d = %d out of range %d", gi, v, e.cfg.Arity(gi))
		}
	}
	e.pop[i] = Individual{Genome: g.Clone()}
	return nil
}

// Population returns the current individuals. The slice is owned by the
// engine; callers must not grow it but may set fitnesses via SetFitness.
func (e *Engine) Population() []Individual { return e.pop }

// SetFitness records the measured fitness of individual i.
func (e *Engine) SetFitness(i int, fitness float64) {
	if i < 0 || i >= len(e.pop) {
		panic(fmt.Sprintf("ga: SetFitness index %d out of range %d", i, len(e.pop)))
	}
	e.pop[i].Fitness = fitness
	e.pop[i].Evaluated = true
	if !e.hasBest || fitness > e.best.Fitness {
		e.best = Individual{Genome: e.pop[i].Genome.Clone(), Fitness: fitness, Evaluated: true}
		e.hasBest = true
	}
}

// Best returns the best individual ever evaluated (elitism guarantees it is
// never lost). ok is false before any evaluation.
func (e *Engine) Best() (Individual, bool) {
	if !e.hasBest {
		return Individual{}, false
	}
	return Individual{Genome: e.best.Genome.Clone(), Fitness: e.best.Fitness, Evaluated: true}, true
}

// SetActiveGenes installs the impact-first subset mask. Inactive genes are
// pinned: in new offspring they take the value from the best genome found so
// far (or the provided pin genome when no evaluation has happened yet).
// A nil mask activates all genes.
func (e *Engine) SetActiveGenes(mask []bool, pin Genome) error {
	if mask == nil {
		for i := range e.active {
			e.active[i] = true
		}
		return nil
	}
	if len(mask) != e.cfg.GenomeLen {
		return fmt.Errorf("ga: mask length %d, want %d", len(mask), e.cfg.GenomeLen)
	}
	any := false
	for _, a := range mask {
		if a {
			any = true
			break
		}
	}
	if !any {
		return fmt.Errorf("ga: mask deactivates every gene")
	}
	copy(e.active, mask)
	switch {
	case pin != nil:
		if len(pin) != e.cfg.GenomeLen {
			return fmt.Errorf("ga: pin genome length %d, want %d", len(pin), e.cfg.GenomeLen)
		}
		copy(e.pinned, pin)
	case e.hasBest:
		copy(e.pinned, e.best.Genome)
	}
	// Individuals not yet evaluated (e.g. the random initial population)
	// are re-pinned immediately so the very first iteration already
	// explores only the active subset.
	for i := range e.pop {
		if !e.pop[i].Evaluated {
			e.pin(e.pop[i].Genome)
		}
	}
	return nil
}

// ActiveGenes returns a copy of the current mask.
func (e *Engine) ActiveGenes() []bool {
	return append([]bool(nil), e.active...)
}

// NextGeneration replaces the population with offspring: elites first, then
// children produced by selection, crossover, and mutation. All individuals
// must have been evaluated.
func (e *Engine) NextGeneration() error {
	for i := range e.pop {
		if !e.pop[i].Evaluated {
			return fmt.Errorf("ga: individual %d not evaluated", i)
		}
	}

	next := make([]Individual, 0, e.cfg.PopSize)

	// Elitism: carry the globally best genome, then the generation's top
	// remaining individuals, unchanged.
	if e.cfg.Elites > 0 && e.hasBest {
		next = append(next, Individual{Genome: e.best.Genome.Clone()})
	}
	order := e.fitnessOrder()
	for _, idx := range order {
		if len(next) >= e.cfg.Elites {
			break
		}
		next = append(next, Individual{Genome: e.pop[idx].Genome.Clone()})
	}

	for len(next) < e.cfg.PopSize {
		p1, p2 := e.selectParents()
		c1, c2 := p1.Clone(), p2.Clone()
		if e.rng.Float64() < e.cfg.CrossoverProb {
			e.crossover(c1, c2)
		}
		e.mutate(c1)
		e.mutate(c2)
		e.pin(c1)
		e.pin(c2)
		next = append(next, Individual{Genome: c1})
		if len(next) < e.cfg.PopSize {
			next = append(next, Individual{Genome: c2})
		}
	}

	e.pop = next
	e.generation++
	return nil
}

// fitnessOrder returns population indices sorted by decreasing fitness.
func (e *Engine) fitnessOrder() []int {
	idx := make([]int, len(e.pop))
	for i := range idx {
		idx[i] = i
	}
	// simple insertion sort: populations are small
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && e.pop[idx[j]].Fitness > e.pop[idx[j-1]].Fitness; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// selectParents draws two parents per the configured strategy.
func (e *Engine) selectParents() (Genome, Genome) {
	switch e.cfg.Selection {
	case Roulette:
		return e.roulette(), e.roulette()
	default: // TournamentKeep2: pick 3 at random, keep the best 2
		a := e.rng.Intn(len(e.pop))
		b := e.rng.Intn(len(e.pop))
		c := e.rng.Intn(len(e.pop))
		// order a, b, c by fitness descending
		if e.pop[b].Fitness > e.pop[a].Fitness {
			a, b = b, a
		}
		if e.pop[c].Fitness > e.pop[a].Fitness {
			a, c = c, a
		}
		if e.pop[c].Fitness > e.pop[b].Fitness {
			b, c = c, b
		}
		return e.pop[a].Genome, e.pop[b].Genome
	}
}

func (e *Engine) roulette() Genome {
	min := e.pop[0].Fitness
	for _, ind := range e.pop {
		if ind.Fitness < min {
			min = ind.Fitness
		}
	}
	total := 0.0
	for _, ind := range e.pop {
		total += ind.Fitness - min
	}
	if total <= 0 {
		return e.pop[e.rng.Intn(len(e.pop))].Genome
	}
	r := e.rng.Float64() * total
	acc := 0.0
	for _, ind := range e.pop {
		acc += ind.Fitness - min
		if r <= acc {
			return ind.Genome
		}
	}
	return e.pop[len(e.pop)-1].Genome
}

// crossover performs uniform crossover over active genes, in place.
func (e *Engine) crossover(a, b Genome) {
	for i := range a {
		if e.active[i] && e.rng.Float64() < 0.5 {
			a[i], b[i] = b[i], a[i]
		}
	}
}

// mutate perturbs each active gene. Genes over small value lists (flags,
// enums) resample uniformly; genes over larger ordered lists (sizes,
// counts) take ordinal random-walk steps of +-1 or +-2, which is how
// tuners treat ordered parameters and what produces the gradual,
// logarithmic convergence real tuning pipelines exhibit.
//
// The per-gene probability scales inversely with the active-subset size so
// each child receives a roughly constant number of mutations: this is how
// restricting the search to a high-impact subset concentrates exploration
// and converges in fewer generations (the paper's impact-first effect).
func (e *Engine) mutate(g Genome) {
	activeCount := 0
	for _, a := range e.active {
		if a {
			activeCount++
		}
	}
	concentration := 1
	prob := e.cfg.MutationProb
	if activeCount > 0 {
		concentration = len(e.active) / activeCount
		prob *= float64(len(e.active)) / float64(activeCount)
	}
	if prob > 0.5 {
		prob = 0.5
	}
	for i := range g {
		if !e.active[i] || e.rng.Float64() >= prob {
			continue
		}
		g[i] = e.perturb(g[i], e.cfg.Arity(i), concentration)
	}
}

// perturb returns a mutated value index for a gene of the given arity.
// concentration >= 1 widens the ordinal step when mutation is focused on a
// small active subset (the same exploration budget over fewer genes covers
// each gene's range faster — the mechanism behind impact-first tuning's
// accelerated convergence).
func (e *Engine) perturb(v, arity, concentration int) int {
	if arity <= 4 {
		return e.rng.Intn(arity)
	}
	maxStep := 2 * concentration
	if maxStep > arity/2 {
		maxStep = arity / 2
	}
	if maxStep < 2 {
		maxStep = 2
	}
	step := 1 + e.rng.Intn(maxStep)
	if e.rng.Intn(2) == 0 {
		step = -step
	}
	v += step
	if v < 0 {
		v = 0
	}
	if v >= arity {
		v = arity - 1
	}
	return v
}

// pin forces inactive genes to their pinned values.
func (e *Engine) pin(g Genome) {
	for i := range g {
		if !e.active[i] {
			if e.hasBest {
				g[i] = e.best.Genome[i]
			} else {
				g[i] = e.pinned[i]
			}
		}
	}
}

// Stats summarizes the current population's fitnesses.
type Stats struct {
	Generation int
	Best       float64
	Mean       float64
	Worst      float64
}

// PopulationStats computes Stats over the evaluated population.
func (e *Engine) PopulationStats() Stats {
	s := Stats{Generation: e.generation}
	if len(e.pop) == 0 {
		return s
	}
	s.Best = e.pop[0].Fitness
	s.Worst = e.pop[0].Fitness
	sum := 0.0
	for _, ind := range e.pop {
		if ind.Fitness > s.Best {
			s.Best = ind.Fitness
		}
		if ind.Fitness < s.Worst {
			s.Worst = ind.Fitness
		}
		sum += ind.Fitness
	}
	s.Mean = sum / float64(len(e.pop))
	return s
}
