package ga

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func arity4(int) int { return 4 }

func newTestEngine(t *testing.T, cfg Config, seed int64) *Engine {
	t.Helper()
	e, err := New(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(Config{GenomeLen: 0, Arity: arity4}, rng); err == nil {
		t.Fatal("GenomeLen=0: want error")
	}
	if _, err := New(Config{GenomeLen: 3}, rng); err == nil {
		t.Fatal("nil Arity: want error")
	}
	if _, err := New(Config{GenomeLen: 3, Arity: func(int) int { return 0 }}, rng); err == nil {
		t.Fatal("zero arity: want error")
	}
	if _, err := New(Config{GenomeLen: 3, Arity: arity4, PopSize: 4, Elites: 4}, rng); err == nil {
		t.Fatal("Elites >= PopSize: want error")
	}
}

func TestInitialPopulationInRange(t *testing.T) {
	e := newTestEngine(t, Config{GenomeLen: 6, Arity: func(g int) int { return g + 1 }, PopSize: 20}, 2)
	for _, ind := range e.Population() {
		if len(ind.Genome) != 6 {
			t.Fatalf("genome len = %d", len(ind.Genome))
		}
		for g, v := range ind.Genome {
			if v < 0 || v >= g+1 {
				t.Fatalf("gene %d = %d out of range %d", g, v, g+1)
			}
		}
	}
}

func TestNextGenerationRequiresEvaluation(t *testing.T) {
	e := newTestEngine(t, Config{GenomeLen: 3, Arity: arity4, PopSize: 4}, 3)
	if err := e.NextGeneration(); err == nil {
		t.Fatal("unevaluated population: want error")
	}
}

func TestSetFitnessValidation(t *testing.T) {
	e := newTestEngine(t, Config{GenomeLen: 3, Arity: arity4, PopSize: 4}, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for bad index")
		}
	}()
	e.SetFitness(10, 1)
}

func TestElitismPreservesBest(t *testing.T) {
	e := newTestEngine(t, Config{GenomeLen: 4, Arity: arity4, PopSize: 8, Elites: 1}, 4)
	// Evaluate with a recognizable champion.
	for i := range e.Population() {
		e.SetFitness(i, float64(i))
	}
	champion := e.Population()[7].Genome.Clone()
	for gen := 0; gen < 5; gen++ {
		if err := e.NextGeneration(); err != nil {
			t.Fatal(err)
		}
		// Champion must be present verbatim (elite slot 0).
		first := e.Population()[0].Genome
		for g := range champion {
			if first[g] != champion[g] {
				t.Fatalf("gen %d: elite genome %v != champion %v", gen, first, champion)
			}
		}
		// Re-evaluate: champion stays best.
		for i := range e.Population() {
			f := 0.0
			same := true
			for g := range champion {
				if e.Population()[i].Genome[g] != champion[g] {
					same = false
					break
				}
			}
			if same {
				f = 7
			}
			e.SetFitness(i, f)
		}
	}
	best, ok := e.Best()
	if !ok || best.Fitness != 7 {
		t.Fatalf("Best = %+v, %v", best, ok)
	}
}

func TestBestBeforeEvaluation(t *testing.T) {
	e := newTestEngine(t, Config{GenomeLen: 2, Arity: arity4, PopSize: 4}, 5)
	if _, ok := e.Best(); ok {
		t.Fatal("Best before any evaluation should report ok=false")
	}
}

// onemax fitness: count of genes equal to arity-1.
func onemax(g Genome, arity int) float64 {
	s := 0.0
	for _, v := range g {
		if v == arity-1 {
			s++
		}
	}
	return s
}

func TestConvergesOnOneMax(t *testing.T) {
	const genomeLen, arity = 12, 4
	e := newTestEngine(t, Config{
		GenomeLen: genomeLen,
		Arity:     func(int) int { return arity },
		PopSize:   24,
	}, 6)
	var best float64
	for gen := 0; gen < 60; gen++ {
		for i := range e.Population() {
			f := onemax(e.Population()[i].Genome, arity)
			e.SetFitness(i, f)
			if f > best {
				best = f
			}
		}
		if best == genomeLen {
			break
		}
		if err := e.NextGeneration(); err != nil {
			t.Fatal(err)
		}
	}
	if best < genomeLen-1 {
		t.Fatalf("GA reached %v of %v on onemax after 60 generations", best, genomeLen)
	}
}

func TestRouletteSelectionAlsoConverges(t *testing.T) {
	const genomeLen, arity = 8, 3
	e := newTestEngine(t, Config{
		GenomeLen: genomeLen,
		Arity:     func(int) int { return arity },
		PopSize:   20,
		Selection: Roulette,
	}, 7)
	var best float64
	for gen := 0; gen < 80; gen++ {
		for i := range e.Population() {
			f := onemax(e.Population()[i].Genome, arity)
			e.SetFitness(i, f)
			if f > best {
				best = f
			}
		}
		if err := e.NextGeneration(); err != nil {
			t.Fatal(err)
		}
	}
	if best < genomeLen-1 {
		t.Fatalf("roulette GA reached %v of %v", best, genomeLen)
	}
}

func TestActiveGeneMaskPinsInactiveGenes(t *testing.T) {
	e := newTestEngine(t, Config{GenomeLen: 5, Arity: arity4, PopSize: 10}, 8)
	pin := Genome{3, 3, 3, 3, 3}
	mask := []bool{true, false, true, false, false}
	if err := e.SetActiveGenes(mask, pin); err != nil {
		t.Fatal(err)
	}
	for i := range e.Population() {
		e.SetFitness(i, float64(i))
	}
	for gen := 0; gen < 4; gen++ {
		if err := e.NextGeneration(); err != nil {
			t.Fatal(err)
		}
		for _, ind := range e.Population()[1:] { // skip elite (predates the mask)
			for g, active := range mask {
				if !active && ind.Genome[g] != 3 {
					// inactive genes pin to the best genome once one exists
					best, _ := e.Best()
					if ind.Genome[g] != best.Genome[g] {
						t.Fatalf("gen %d: inactive gene %d = %d, want pinned", gen, g, ind.Genome[g])
					}
				}
			}
		}
		for i := range e.Population() {
			e.SetFitness(i, 0)
		}
	}
}

func TestSetActiveGenesValidation(t *testing.T) {
	e := newTestEngine(t, Config{GenomeLen: 3, Arity: arity4, PopSize: 4}, 9)
	if err := e.SetActiveGenes([]bool{true}, nil); err == nil {
		t.Fatal("short mask: want error")
	}
	if err := e.SetActiveGenes([]bool{false, false, false}, nil); err == nil {
		t.Fatal("all-inactive mask: want error")
	}
	if err := e.SetActiveGenes([]bool{true, true, true}, Genome{1}); err == nil {
		t.Fatal("short pin: want error")
	}
	if err := e.SetActiveGenes(nil, nil); err != nil {
		t.Fatal(err)
	}
	for _, a := range e.ActiveGenes() {
		if !a {
			t.Fatal("nil mask should activate all genes")
		}
	}
}

func TestPopulationStats(t *testing.T) {
	e := newTestEngine(t, Config{GenomeLen: 2, Arity: arity4, PopSize: 4}, 10)
	for i := range e.Population() {
		e.SetFitness(i, float64(i+1)) // 1, 2, 3, 4
	}
	s := e.PopulationStats()
	if s.Best != 4 || s.Worst != 1 || s.Mean != 2.5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGenerationCounter(t *testing.T) {
	e := newTestEngine(t, Config{GenomeLen: 2, Arity: arity4, PopSize: 4}, 11)
	if e.Generation() != 0 {
		t.Fatal("initial generation != 0")
	}
	for i := range e.Population() {
		e.SetFitness(i, 1)
	}
	if err := e.NextGeneration(); err != nil {
		t.Fatal(err)
	}
	if e.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", e.Generation())
	}
}

func TestOffspringGenesAlwaysInRange(t *testing.T) {
	f := func(seed int64) bool {
		e, err := New(Config{
			GenomeLen: 6,
			Arity:     func(g int) int { return 2 + g%3 },
			PopSize:   8,
		}, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for gen := 0; gen < 5; gen++ {
			for i := range e.Population() {
				e.SetFitness(i, float64(seed%7)+float64(i))
			}
			if err := e.NextGeneration(); err != nil {
				return false
			}
			for _, ind := range e.Population() {
				for g, v := range ind.Genome {
					if v < 0 || v >= 2+g%3 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() []Genome {
		e, _ := New(Config{GenomeLen: 4, Arity: arity4, PopSize: 6}, rand.New(rand.NewSource(42)))
		for gen := 0; gen < 3; gen++ {
			for i := range e.Population() {
				e.SetFitness(i, onemax(e.Population()[i].Genome, 4))
			}
			if err := e.NextGeneration(); err != nil {
				t.Fatal(err)
			}
		}
		var out []Genome
		for _, ind := range e.Population() {
			out = append(out, ind.Genome.Clone())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		for g := range a[i] {
			if a[i][g] != b[i][g] {
				t.Fatal("same seed produced different evolution")
			}
		}
	}
}

func TestRouletteDegenerateFitness(t *testing.T) {
	// All-equal fitness: roulette must still pick parents (uniform path).
	e := newTestEngine(t, Config{GenomeLen: 3, Arity: arity4, PopSize: 6, Selection: Roulette}, 21)
	for i := range e.Population() {
		e.SetFitness(i, 5) // zero spread
	}
	if err := e.NextGeneration(); err != nil {
		t.Fatal(err)
	}
}

func TestInitGenomeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	if _, err := New(Config{GenomeLen: 3, Arity: arity4, InitGenome: Genome{0}}, rng); err == nil {
		t.Fatal("short InitGenome: want error")
	}
	if _, err := New(Config{GenomeLen: 3, Arity: arity4, InitGenome: Genome{0, 9, 0}}, rng); err == nil {
		t.Fatal("out-of-range InitGenome: want error")
	}
}

func TestInitGenomeSeedsNearby(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	seed := Genome{2, 2, 2, 2, 2, 2}
	e, err := New(Config{
		GenomeLen: 6, Arity: func(int) int { return 8 }, PopSize: 20,
		InitGenome: seed, InitMutation: 0.3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// most genes should remain at the seed value
	same, total := 0, 0
	for _, ind := range e.Population() {
		for g, v := range ind.Genome {
			total++
			if v == seed[g] {
				same++
			}
		}
	}
	if frac := float64(same) / float64(total); frac < 0.5 {
		t.Fatalf("only %.0f%% of genes kept the seed value", frac*100)
	}
}

func TestSetGenomeValidation(t *testing.T) {
	e := newTestEngine(t, Config{GenomeLen: 3, Arity: arity4, PopSize: 4}, 24)
	if err := e.SetGenome(99, Genome{0, 0, 0}); err == nil {
		t.Fatal("bad index: want error")
	}
	if err := e.SetGenome(0, Genome{0}); err == nil {
		t.Fatal("short genome: want error")
	}
	if err := e.SetGenome(0, Genome{0, 9, 0}); err == nil {
		t.Fatal("out-of-range gene: want error")
	}
	if err := e.SetGenome(0, Genome{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if e.Population()[0].Evaluated {
		t.Fatal("SetGenome must clear evaluation state")
	}
}

func TestConcentratedMutationTakesBiggerSteps(t *testing.T) {
	// With one active high-arity gene, offspring must reach distant value
	// indices quickly (the impact-first acceleration mechanism).
	rng := rand.New(rand.NewSource(25))
	e, err := New(Config{
		GenomeLen:  12,
		Arity:      func(int) int { return 16 },
		PopSize:    10,
		InitGenome: make(Genome, 12), // all zeros
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, 12)
	mask[0] = true
	if err := e.SetActiveGenes(mask, make(Genome, 12)); err != nil {
		t.Fatal(err)
	}
	maxSeen := 0
	for gen := 0; gen < 6; gen++ {
		for i, ind := range e.Population() {
			e.SetFitness(i, float64(ind.Genome[0])) // climb gene 0
			if ind.Genome[0] > maxSeen {
				maxSeen = ind.Genome[0]
			}
		}
		if err := e.NextGeneration(); err != nil {
			t.Fatal(err)
		}
	}
	if maxSeen < 10 {
		t.Fatalf("concentrated walk reached only index %d of 15 in 6 generations", maxSeen)
	}
}
