// Package mat provides the small dense-matrix and vector kernel used by the
// neural-network, PCA, and reinforcement-learning packages.
//
// Matrices are row-major, stored in a single []float64 backing slice. The
// package is deliberately minimal: it implements exactly the operations the
// rest of TunIO needs (products, transposes, element-wise maps, reductions)
// with bounds checks on dimension agreement so that shape bugs surface as
// errors at the call site instead of silent corruption.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a rows x cols matrix that copies data (len must equal
// rows*cols).
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("mat: FromSlice: have %d values, need %d (%dx%d)", len(data), rows*cols, rows, cols)
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m, nil
}

// FromRows builds a matrix from a slice of equally sized rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mat: FromRows: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.Rows))
	}
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// RowView returns row i backed by the matrix storage (no copy).
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("mat: Mul: %dx%d * %dx%d dimension mismatch", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m*v for a column vector v (len(v) == m.Cols).
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if len(v) != m.Cols {
		return nil, fmt.Errorf("mat: MulVec: vector len %d, matrix %dx%d", len(v), m.Rows, m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns a+b.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("mat: Add: %dx%d + %dx%d dimension mismatch", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out, nil
}

// Sub returns a-b.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("mat: Sub: %dx%d - %dx%d dimension mismatch", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out, nil
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Apply replaces every element x with f(x) in place and returns m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
	return m
}

// Equal reports whether a and b have the same shape and elements within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Frobenius returns the Frobenius norm of m.
func (m *Matrix) Frobenius() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("mat(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
