package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromSliceErrors(t *testing.T) {
	if _, err := FromSlice(2, 2, []float64{1, 2, 3}); err == nil {
		t.Fatal("FromSlice with short data: want error")
	}
	m, err := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("unexpected matrix %v", m)
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged rows: want error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Fatalf("FromRows(nil) = %v, %v", empty, err)
	}
}

func TestIdentityMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	id := Identity(3)
	got, err := Mul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, got, 0) {
		t.Fatalf("a*I = %v, want %v", got, a)
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(want, got, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("Mul 2x3 * 2x3: want error")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got, err := m.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || got[1] != 6 {
		t.Fatalf("MulVec = %v, want [7 6]", got)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("MulVec short vector: want error")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(vals [6]float64) bool {
		m, _ := FromSlice(2, 3, vals[:])
		return Equal(m, m.T().T(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulTransposeProperty(t *testing.T) {
	// (A*B)^T == B^T * A^T
	f := func(av, bv [4]float64) bool {
		a, _ := FromSlice(2, 2, av[:])
		b, _ := FromSlice(2, 2, bv[:])
		ab, err := Mul(a, b)
		if err != nil {
			return false
		}
		btat, err := Mul(b.T(), a.T())
		if err != nil {
			return false
		}
		return Equal(ab.T(), btat, 1e-9*(1+ab.Frobenius()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSub(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{10, 20}})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0, 0) != 11 || sum.At(0, 1) != 22 {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := Sub(sum, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(diff, a, 0) {
		t.Fatalf("Sub = %v, want %v", diff, a)
	}
	if _, err := Add(a, New(2, 2)); err == nil {
		t.Fatal("Add mismatched shapes: want error")
	}
	if _, err := Sub(a, New(2, 2)); err == nil {
		t.Fatal("Sub mismatched shapes: want error")
	}
}

func TestScaleApply(t *testing.T) {
	m, _ := FromRows([][]float64{{1, -2}})
	m.Scale(2).Apply(math.Abs)
	if m.At(0, 0) != 2 || m.At(0, 1) != 4 {
		t.Fatalf("Scale+Apply = %v", m)
	}
}

func TestRowColViews(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99 // copy: must not affect m
	if m.At(1, 0) != 3 {
		t.Fatal("Row returned a view, want copy")
	}
	rv := m.RowView(1)
	rv[0] = 99 // view: must affect m
	if m.At(1, 0) != 99 {
		t.Fatal("RowView returned a copy, want view")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col = %v", c)
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestPanicsOnBadIndex(t *testing.T) {
	m := New(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.Set(0, -1, 1) },
		func() { m.Row(5) },
		func() { m.Col(5) },
		func() { m.RowView(-1) },
		func() { New(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestFrobenius(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 4}})
	if got := m.Frobenius(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v, want 5", got)
	}
}

func TestString(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if s := m.String(); s != "mat(2x2)[1 2; 3 4]" {
		t.Fatalf("String = %q", s)
	}
}

func TestDotAndNorms(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Dot mismatched lengths: want panic")
			}
		}()
		Dot([]float64{1}, []float64{1, 2})
	}()
}

func TestVecOps(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := VecAdd(a, b); got[0] != 4 || got[1] != 7 {
		t.Fatalf("VecAdd = %v", got)
	}
	if got := VecSub(b, a); got[0] != 2 || got[1] != 3 {
		t.Fatalf("VecSub = %v", got)
	}
	if got := VecScale(2, a); got[0] != 2 || got[1] != 4 {
		t.Fatalf("VecScale = %v", got)
	}
	dst := make([]float64, 2)
	AxpyInto(dst, 2, a, b)
	if dst[0] != 5 || dst[1] != 9 {
		t.Fatalf("AxpyInto = %v", dst)
	}
}

func TestStats(t *testing.T) {
	a := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(a) != 5 {
		t.Fatalf("Mean = %v", Mean(a))
	}
	if Variance(a) != 4 {
		t.Fatalf("Variance = %v", Variance(a))
	}
	if Stddev(a) != 2 {
		t.Fatalf("Stddev = %v", Stddev(a))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty-input stats should be 0")
	}
}

func TestArgMaxMinMax(t *testing.T) {
	a := []float64{1, 5, 5, 2}
	if ArgMax(a) != 1 {
		t.Fatalf("ArgMax = %d, want 1 (ties to lowest index)", ArgMax(a))
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) != -1")
	}
	if MaxVal(a) != 5 || MinVal(a) != 1 {
		t.Fatal("MaxVal/MinVal wrong")
	}
	if !math.IsInf(MaxVal(nil), -1) || !math.IsInf(MinVal(nil), 1) {
		t.Fatal("empty MaxVal/MinVal should be infinities")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

func TestMeanVarianceProperty(t *testing.T) {
	// Variance is translation invariant.
	f := func(vals [8]float64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		// keep magnitudes sane to avoid float cancellation false alarms
		shift = math.Mod(shift, 1000)
		a := make([]float64, len(vals))
		b := make([]float64, len(vals))
		for i, v := range vals {
			v = math.Mod(v, 1000)
			if math.IsNaN(v) {
				v = 0
			}
			a[i] = v
			b[i] = v + shift
		}
		return math.Abs(Variance(a)-Variance(b)) < 1e-6*(1+math.Abs(Variance(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
