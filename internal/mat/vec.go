package mat

import (
	"fmt"
	"math"
)

// Vector helpers. All functions operate on plain []float64 slices; functions
// that combine two vectors panic on length mismatch, because a mismatch is
// always a programming error in this codebase (shapes are static).

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot: len %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AxpyInto computes dst = a*x + y element-wise.
func AxpyInto(dst []float64, a float64, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(fmt.Sprintf("mat: AxpyInto: len %d/%d/%d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = a*x[i] + y[i]
	}
}

// VecAdd returns a+b as a new slice.
func VecAdd(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: VecAdd: len %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// VecSub returns a-b as a new slice.
func VecSub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: VecSub: len %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// VecScale returns s*a as a new slice.
func VecScale(s float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = s * a[i]
	}
	return out
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// Mean returns the arithmetic mean of a (0 for empty input).
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}

// Variance returns the population variance of a (0 for len < 2).
func Variance(a []float64) float64 {
	if len(a) < 2 {
		return 0
	}
	m := Mean(a)
	s := 0.0
	for _, v := range a {
		d := v - m
		s += d * d
	}
	return s / float64(len(a))
}

// Stddev returns the population standard deviation of a.
func Stddev(a []float64) float64 {
	return math.Sqrt(Variance(a))
}

// ArgMax returns the index of the maximum element (-1 for empty input).
// Ties resolve to the lowest index.
func ArgMax(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(a); i++ {
		if a[i] > a[best] {
			best = i
		}
	}
	return best
}

// MaxVal returns the maximum element (-Inf for empty input).
func MaxVal(a []float64) float64 {
	if len(a) == 0 {
		return math.Inf(-1)
	}
	return a[ArgMax(a)]
}

// MinVal returns the minimum element (+Inf for empty input).
func MinVal(a []float64) float64 {
	m := math.Inf(1)
	for _, v := range a {
		if v < m {
			m = v
		}
	}
	return m
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
