// Package metrics implements the paper's evaluation metrics: the tuning
// objective perf, Return on Tuning Investment (RoTI), tuning curves, and
// the application-lifecycle viability analysis of Figure 12.
//
// RoTI(t) = (perf_achieved(t) - perf_achieved(0)) / t, with perf in MB/s
// and t the cumulative tuning time in minutes: an RoTI of 40 means tuning
// bought 40 MB/s of application bandwidth per minute invested (§IV).
package metrics

import (
	"fmt"
	"math"
)

// Point is one tuning-iteration observation.
type Point struct {
	Iteration   int     // generation number, starting at 0 for the initial evaluation
	TimeMinutes float64 // cumulative tuning time when the iteration finished
	IterPerf    float64 // best perf measured within the iteration (MB/s)
	BestPerf    float64 // best perf achieved so far (MB/s)
}

// Curve is a tuning trajectory, ordered by iteration.
type Curve []Point

// Validate checks monotonicity invariants.
func (c Curve) Validate() error {
	for i := range c {
		if i == 0 {
			continue
		}
		if c[i].TimeMinutes < c[i-1].TimeMinutes {
			return fmt.Errorf("metrics: time not monotone at %d", i)
		}
		if c[i].BestPerf < c[i-1].BestPerf {
			return fmt.Errorf("metrics: best perf decreased at %d", i)
		}
	}
	return nil
}

// Baseline returns perf_achieved(0): the first point's best perf (the
// default-configuration performance).
func (c Curve) Baseline() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[0].BestPerf
}

// RoTIAt returns the RoTI of the curve at index i. The convention for
// undefined ratios is 0: a point with non-positive (or NaN) cumulative
// time — e.g. a curve whose first point sits at t=0 — has no investment
// to return on, and a non-finite perf delta yields no meaningful rate.
func (c Curve) RoTIAt(i int) float64 {
	if i < 0 || i >= len(c) {
		return 0
	}
	t := c[i].TimeMinutes
	if !(t > 0) { // rejects t <= 0 and NaN
		return 0
	}
	r := (c[i].BestPerf - c.Baseline()) / t
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

// RoTISeries returns the RoTI at every point.
func (c Curve) RoTISeries() []float64 {
	out := make([]float64, len(c))
	for i := range c {
		out[i] = c.RoTIAt(i)
	}
	return out
}

// PeakRoTI returns the maximum RoTI on the curve, the time at which it is
// reached, and its index. Zero-valued results for empty curves.
func (c Curve) PeakRoTI() (value, atMinutes float64, index int) {
	for i := range c {
		if r := c.RoTIAt(i); r > value {
			value = r
			atMinutes = c[i].TimeMinutes
			index = i
		}
	}
	return value, atMinutes, index
}

// FinalBest returns the last point's best perf (0 for empty curves).
func (c Curve) FinalBest() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].BestPerf
}

// TotalMinutes returns the curve's cumulative tuning time.
func (c Curve) TotalMinutes() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].TimeMinutes
}

// FirstReaching returns the index of the first point whose best perf
// reaches target, or -1.
func (c Curve) FirstReaching(target float64) int {
	for i := range c {
		if c[i].BestPerf >= target {
			return i
		}
	}
	return -1
}

// Truncate returns the curve cut after index i (stopping at iteration i).
func (c Curve) Truncate(i int) Curve {
	if i < 0 {
		return nil
	}
	if i >= len(c) {
		i = len(c) - 1
	}
	return c[:i+1]
}

// Speedup returns final-best / baseline. The convention for undefined
// ratios is 0: an empty curve, a non-positive baseline, or a NaN baseline
// has no meaningful speedup, and returning 1 would fake "no improvement"
// where nothing was measured.
func (c Curve) Speedup() float64 {
	b := c.Baseline()
	if !(b > 0) { // rejects b <= 0 and NaN
		return 0
	}
	s := c.FinalBest() / b
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return 0
	}
	return s
}

// Lifecycle models Figure 12's analysis: the total time of an
// application's life across n production executions, given the time spent
// tuning and the per-execution runtimes before and after tuning.
type Lifecycle struct {
	TuneMinutes     float64 // y-intercept of the tuned line
	TunedRunMinutes float64 // per-execution runtime after tuning
	BaselineMinutes float64 // per-execution runtime without tuning
}

// TotalTime returns the lifecycle time for n executions under this tuning.
func (l Lifecycle) TotalTime(n float64) float64 {
	return l.TuneMinutes + n*l.TunedRunMinutes
}

// BaselineTotal returns the no-tuning lifecycle time for n executions.
func (l Lifecycle) BaselineTotal(n float64) float64 {
	return n * l.BaselineMinutes
}

// ViabilityPoint returns the execution count at which tuning pays for
// itself versus never tuning (+Inf if tuning never pays off).
func (l Lifecycle) ViabilityPoint() float64 {
	saved := l.BaselineMinutes - l.TunedRunMinutes
	if saved <= 0 {
		return math.Inf(1)
	}
	return l.TuneMinutes / saved
}

// CrossoverExecutions returns the execution count at which lifecycle b
// becomes cheaper than lifecycle a (a wins before it). +Inf when a stays
// ahead forever; 0 when b is never behind.
func CrossoverExecutions(a, b Lifecycle) float64 {
	// a.Tune + n*a.Run == b.Tune + n*b.Run
	dRun := a.TunedRunMinutes - b.TunedRunMinutes
	dTune := b.TuneMinutes - a.TuneMinutes
	if dRun <= 0 {
		if dTune >= 0 {
			return math.Inf(1) // a cheaper to set up and at least as fast
		}
		return 0 // b dominates from the start
	}
	n := dTune / dRun
	if n < 0 {
		return 0
	}
	return n
}
