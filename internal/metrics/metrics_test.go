package metrics

import (
	"math"
	"testing"
)

func sample() Curve {
	return Curve{
		{Iteration: 0, TimeMinutes: 10, IterPerf: 100, BestPerf: 100},
		{Iteration: 1, TimeMinutes: 20, IterPerf: 150, BestPerf: 150},
		{Iteration: 2, TimeMinutes: 30, IterPerf: 120, BestPerf: 150},
		{Iteration: 3, TimeMinutes: 40, IterPerf: 300, BestPerf: 300},
		{Iteration: 4, TimeMinutes: 60, IterPerf: 310, BestPerf: 310},
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sample()
	bad[2].TimeMinutes = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("non-monotone time: want error")
	}
	bad2 := sample()
	bad2[2].BestPerf = 10
	if err := bad2.Validate(); err == nil {
		t.Fatal("decreasing best: want error")
	}
}

func TestBaselineAndFinal(t *testing.T) {
	c := sample()
	if c.Baseline() != 100 || c.FinalBest() != 310 {
		t.Fatalf("baseline %v final %v", c.Baseline(), c.FinalBest())
	}
	var empty Curve
	if empty.Baseline() != 0 || empty.FinalBest() != 0 || empty.TotalMinutes() != 0 {
		t.Fatal("empty curve should be zeros")
	}
}

func TestRoTI(t *testing.T) {
	c := sample()
	// at index 3: (300-100)/40 = 5
	if got := c.RoTIAt(3); math.Abs(got-5) > 1e-12 {
		t.Fatalf("RoTIAt(3) = %v, want 5", got)
	}
	if c.RoTIAt(-1) != 0 || c.RoTIAt(99) != 0 {
		t.Fatal("out-of-range RoTI should be 0")
	}
	series := c.RoTISeries()
	if len(series) != 5 || series[0] != 0 {
		t.Fatalf("series = %v", series)
	}
	peak, at, idx := c.PeakRoTI()
	if peak != 5 || at != 40 || idx != 3 {
		t.Fatalf("peak = %v at %v idx %d", peak, at, idx)
	}
}

func TestRoTIZeroTime(t *testing.T) {
	c := Curve{{TimeMinutes: 0, BestPerf: 100}}
	if c.RoTIAt(0) != 0 {
		t.Fatal("zero-time RoTI must be 0, not Inf")
	}
}

func TestFirstReaching(t *testing.T) {
	c := sample()
	if c.FirstReaching(150) != 1 {
		t.Fatalf("FirstReaching(150) = %d", c.FirstReaching(150))
	}
	if c.FirstReaching(1e9) != -1 {
		t.Fatal("unreachable target should be -1")
	}
}

func TestTruncate(t *testing.T) {
	c := sample()
	cut := c.Truncate(2)
	if len(cut) != 3 || cut.FinalBest() != 150 {
		t.Fatalf("truncate = %v", cut)
	}
	if got := c.Truncate(99); len(got) != len(c) {
		t.Fatal("over-truncate should clamp")
	}
	if c.Truncate(-1) != nil {
		t.Fatal("negative truncate should be nil")
	}
}

func TestSpeedup(t *testing.T) {
	if got := sample().Speedup(); math.Abs(got-3.1) > 1e-12 {
		t.Fatalf("speedup = %v", got)
	}
	if (Curve{}).Speedup() != 0 {
		t.Fatal("empty speedup should be 0 (undefined-ratio convention)")
	}
}

// TestCurveEdgeCases pins the undefined-ratio convention: RoTIAt,
// RoTISeries, and Speedup return 0 (never ±Inf or NaN) for zero or NaN
// times and zero or negative baselines.
func TestCurveEdgeCases(t *testing.T) {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	cases := []struct {
		name        string
		curve       Curve
		wantRoTI    []float64
		wantSpeedup float64
	}{
		{
			name: "first point at t=0",
			curve: Curve{
				{Iteration: 0, TimeMinutes: 0, BestPerf: 100},
				{Iteration: 1, TimeMinutes: 10, BestPerf: 150},
			},
			wantRoTI:    []float64{0, 5},
			wantSpeedup: 1.5,
		},
		{
			name:        "all points at t=0",
			curve:       Curve{{TimeMinutes: 0, BestPerf: 100}, {TimeMinutes: 0, BestPerf: 200}},
			wantRoTI:    []float64{0, 0},
			wantSpeedup: 2,
		},
		{
			name:        "NaN time",
			curve:       Curve{{TimeMinutes: 0, BestPerf: 10}, {TimeMinutes: math.NaN(), BestPerf: 20}},
			wantRoTI:    []float64{0, 0},
			wantSpeedup: 2,
		},
		{
			name:        "NaN perf",
			curve:       Curve{{TimeMinutes: 1, BestPerf: math.NaN()}, {TimeMinutes: 2, BestPerf: 100}},
			wantRoTI:    []float64{0, 0},
			wantSpeedup: 0,
		},
		{
			name:        "zero baseline",
			curve:       Curve{{TimeMinutes: 1, BestPerf: 0}, {TimeMinutes: 2, BestPerf: 80}},
			wantRoTI:    []float64{0, 40},
			wantSpeedup: 0,
		},
		{
			name:        "negative baseline",
			curve:       Curve{{TimeMinutes: 1, BestPerf: -5}, {TimeMinutes: 2, BestPerf: 10}},
			wantRoTI:    []float64{0, 7.5},
			wantSpeedup: 0,
		},
		{
			name:        "empty curve",
			curve:       Curve{},
			wantRoTI:    []float64{},
			wantSpeedup: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			series := tc.curve.RoTISeries()
			if len(series) != len(tc.wantRoTI) {
				t.Fatalf("series length %d, want %d", len(series), len(tc.wantRoTI))
			}
			for i, got := range series {
				if !finite(got) {
					t.Errorf("RoTIAt(%d) = %v, must be finite", i, got)
				}
				if math.Abs(got-tc.wantRoTI[i]) > 1e-12 {
					t.Errorf("RoTIAt(%d) = %v, want %v", i, got, tc.wantRoTI[i])
				}
			}
			if got := tc.curve.Speedup(); !finite(got) || math.Abs(got-tc.wantSpeedup) > 1e-12 {
				t.Errorf("Speedup() = %v, want %v", got, tc.wantSpeedup)
			}
			if peak, _, _ := tc.curve.PeakRoTI(); !finite(peak) {
				t.Errorf("PeakRoTI() = %v, must be finite", peak)
			}
		})
	}
}

func TestLifecycle(t *testing.T) {
	// Paper's Figure 12: TunIO tunes BD-CATS in 403 min; H5Tuner in 1560.
	tunio := Lifecycle{TuneMinutes: 403, TunedRunMinutes: 10, BaselineMinutes: 10.289}
	if got := tunio.TotalTime(0); got != 403 {
		t.Fatalf("y-intercept = %v", got)
	}
	if got := tunio.TotalTime(100); math.Abs(got-1403) > 1e-9 {
		t.Fatalf("TotalTime(100) = %v", got)
	}
	if got := tunio.BaselineTotal(100); math.Abs(got-1028.9) > 1e-9 {
		t.Fatalf("BaselineTotal = %v", got)
	}
	// viability = 403 / 0.289 ~ 1394 executions (paper's number)
	v := tunio.ViabilityPoint()
	if math.Abs(v-1394.46) > 0.5 {
		t.Fatalf("viability = %v, want ~1394", v)
	}
}

func TestViabilityNeverPays(t *testing.T) {
	l := Lifecycle{TuneMinutes: 100, TunedRunMinutes: 10, BaselineMinutes: 10}
	if !math.IsInf(l.ViabilityPoint(), 1) {
		t.Fatal("no-speedup tuning should never be viable")
	}
}

func TestCrossover(t *testing.T) {
	// a tunes fast but to a slower app; b tunes slow to a faster app.
	a := Lifecycle{TuneMinutes: 403, TunedRunMinutes: 10.0}
	b := Lifecycle{TuneMinutes: 1560, TunedRunMinutes: 9.99971}
	n := CrossoverExecutions(a, b)
	// (1560-403)/(10.0-9.99971) ~ 3.99 million executions (Figure 12)
	if n < 3e6 || n > 5e6 {
		t.Fatalf("crossover = %v, want ~4e6", n)
	}
	// a strictly dominates: never crosses
	if !math.IsInf(CrossoverExecutions(
		Lifecycle{TuneMinutes: 1, TunedRunMinutes: 1},
		Lifecycle{TuneMinutes: 2, TunedRunMinutes: 1},
	), 1) {
		t.Fatal("dominated b should never cross")
	}
	// b dominates from the start
	if got := CrossoverExecutions(
		Lifecycle{TuneMinutes: 2, TunedRunMinutes: 2},
		Lifecycle{TuneMinutes: 1, TunedRunMinutes: 1},
	); got != 0 {
		t.Fatalf("dominating b should cross at 0, got %v", got)
	}
}
