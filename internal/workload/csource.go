package workload

import (
	"fmt"
	"strings"
)

// The C-source forms of the workloads feed TunIO's Application I/O
// Discovery pipeline: the discovery component extracts their I/O kernels,
// and the interpreter executes them SPMD against the simulated stack. A
// conformance test asserts each C form emits the same application-level
// I/O footprint as its native Go form.

// pathBuildStmts emits the C statements that assemble a workload's output
// path with sprintf over constant parts — the real-world pattern
// (sprintf("%s/%s", dir, base)) that used to block path switching with
// TR003 and now exercises the analysis layer's string-constant
// propagation end to end.
func pathBuildStmts(path string) string {
	i := strings.LastIndex(path, "/")
	if i < 0 {
		return fmt.Sprintf(`    char fname[256];
    sprintf(fname, "%%s", %q);`, path)
	}
	return fmt.Sprintf(`    const char* outdir = %q;
    char fname[256];
    sprintf(fname, "%%s/%%s", outdir, %q);`, path[:i], path[i+1:])
}

// CSource generates the VPIC-IO C source with this workload's parameters
// baked in. The program interleaves field-solver compute with per-variable
// particle dumps, mirroring the structure of the paper's Figure 5 example.
func (v *VPIC) CSource() string {
	return fmt.Sprintf(`
#include <hdf5.h>
#include <mpi.h>
#define PARTICLES %d
#define VARS %d
#define STEPS %d
#define SEGMENTS %d
#define PERSEG (PARTICLES / SEGMENTS)

double advance_particles(double dt) {
    double energy = dt * 0.5 + 2.0;
    return energy;
}

int main(int argc, char** argv) {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);

    double dt = 0.01;
    double energy = 0.0;
    double* buf = (double*)malloc(PARTICLES * sizeof(double));

%s
    hid_t file = H5Fcreate(fname, H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    for (int step = 0; step < STEPS; step++) {
        compute_flops(%g);
        energy = advance_particles(dt);
        energy = energy * 1.001;
        for (int v = 0; v < VARS; v++) {
            hsize_t dims[2] = {SEGMENTS, 0};
            dims[1] = nprocs * PERSEG;
            hid_t sp = H5Screate_simple(2, dims, NULL);
            hsize_t start[2] = {0, 0};
            hsize_t count[2] = {SEGMENTS, PERSEG};
            start[1] = rank * PERSEG;
            H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
            int dsid = step * VARS + v;
            hid_t dset = H5Dcreate(file, dsname(dsid), H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
            H5Dwrite(dset, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, buf);
            H5Dclose(dset);
            H5Sclose(sp);
        }
    }
    H5Fclose(file);
    free(buf);
    if (rank == 0) {
        printf("vpic done\n");
    }
    MPI_Finalize();
    return 0;
}
`, v.ParticlesPerRank, v.Vars, v.Steps, v.Segments, pathBuildStmts(v.Path), v.ComputeFlops)
}

// CSource generates the HACC-IO C source.
func (h *HACC) CSource() string {
	return fmt.Sprintf(`
#include <hdf5.h>
#include <mpi.h>
#define PARTICLES %d
#define VARS 9
#define STEPS %d
#define SEGMENTS %d
#define PERSEG (PARTICLES / SEGMENTS)

int main(int argc, char** argv) {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    double* buf = (double*)malloc(PARTICLES * sizeof(double));
%s
    hid_t file = H5Fcreate(fname, H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    for (int step = 0; step < STEPS; step++) {
        compute_flops(%g);
        for (int v = 0; v < VARS; v++) {
            hsize_t dims[2] = {SEGMENTS, 0};
            dims[1] = nprocs * PERSEG;
            hid_t sp = H5Screate_simple(2, dims, NULL);
            hsize_t start[2] = {0, 0};
            hsize_t count[2] = {SEGMENTS, PERSEG};
            start[1] = rank * PERSEG;
            H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
            int dsid = step * VARS + v;
            hid_t dset = H5Dcreate(file, dsname(dsid), H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
            H5Dwrite(dset, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, buf);
            H5Dclose(dset);
            H5Sclose(sp);
        }
    }
    H5Fclose(file);
    MPI_Finalize();
    return 0;
}
`, h.ParticlesPerRank, h.Steps, h.Segments, pathBuildStmts(h.Path), h.ComputeFlops)
}

// CSource generates the FLASH-IO checkpoint C source (chunked 4-D
// datasets).
func (fl *FLASH) CSource() string {
	return fmt.Sprintf(`
#include <hdf5.h>
#include <mpi.h>
#define BLOCKS %d
#define NXB %d
#define NYB %d
#define NZB %d
#define UNKNOWNS %d
#define STEPS %d

int main(int argc, char** argv) {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
%s
    hid_t file = H5Fcreate(fname, H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    for (int step = 0; step < STEPS; step++) {
        compute_flops(%g);
        for (int u = 0; u < UNKNOWNS; u++) {
            hsize_t dims[4] = {0, NXB, NYB, NZB};
            dims[0] = nprocs * BLOCKS;
            hid_t sp = H5Screate_simple(4, dims, NULL);
            hid_t dcpl = H5Pcreate(H5P_DATASET_CREATE);
            hsize_t chunk[4] = {8, NXB, NYB, NZB};
            H5Pset_chunk(dcpl, 4, chunk);
            int dsid = step * UNKNOWNS + u;
            hid_t dset = H5Dcreate(file, dsname(dsid), H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, dcpl, H5P_DEFAULT);
            hsize_t start[4] = {0, 0, 0, 0};
            hsize_t count[4] = {BLOCKS, NXB, NYB, NZB};
            start[0] = rank * BLOCKS;
            H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
            H5Dwrite(dset, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
            H5Dclose(dset);
            H5Pclose(dcpl);
            H5Sclose(sp);
        }
    }
    H5Fclose(file);
    MPI_Finalize();
    return 0;
}
`, fl.BlocksPerRank, fl.NXB, fl.NYB, fl.NZB, fl.Unknowns, fl.Steps, pathBuildStmts(fl.Path), fl.ComputeFlops)
}

// CSource generates the MACSio C source: the workload generator's dump
// loop with a compute phase per dump (the structure Figure 8's experiments
// reduce with loop reduction).
func (m *MACSio) CSource() string {
	return fmt.Sprintf(`
#include <hdf5.h>
#include <mpi.h>
#define PER_RANK %d
#define DUMPS %d
#define PARTS %d
#define PERSEG (PER_RANK / PARTS)

double mesh_update(double t) {
    double q = t * t + 1.0;
    return q;
}

int main(int argc, char** argv) {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    double t = 0.0;
    double quality = 0.0;
    double* buf = (double*)malloc(PER_RANK * sizeof(double));
    hid_t file = H5Fcreate(%q, H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    for (int dump = 0; dump < DUMPS; dump++) {
        compute_flops(%g);
        t = t + 1.0;
        quality = mesh_update(t);
        quality = quality * 0.5;
        hsize_t dims[2] = {PARTS, 0};
        dims[1] = nprocs * PERSEG;
        hid_t sp = H5Screate_simple(2, dims, NULL);
        hsize_t start[2] = {0, 0};
        hsize_t count[2] = {PARTS, PERSEG};
        start[1] = rank * PERSEG;
        H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
        hid_t dset = H5Dcreate(file, dsname(dump), H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
        H5Dwrite(dset, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, buf);
        H5Dclose(dset);
        H5Sclose(sp);
    }
    H5Fclose(file);
    MPI_Finalize();
    return 0;
}
`, m.PartsPerRank*m.PartBytes/8, m.Dumps, m.PartsPerRank, m.Path, m.ComputeFlops)
}

// CSource generates the BD-CATS C source: stage a particle dump, read it
// back for clustering, and write cluster labels.
func (b *BDCATS) CSource() string {
	return fmt.Sprintf(`
#include <hdf5.h>
#include <mpi.h>
#define PARTICLES %d
#define VARS %d
#define SEGMENTS %d
#define PERSEG (PARTICLES / SEGMENTS)

int main(int argc, char** argv) {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);

    hid_t in = H5Fcreate(%q, H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    for (int v = 0; v < VARS; v++) {
        hsize_t dims[2] = {SEGMENTS, 0};
        dims[1] = nprocs * PERSEG;
        hid_t sp = H5Screate_simple(2, dims, NULL);
        hsize_t start[2] = {0, 0};
        hsize_t count[2] = {SEGMENTS, PERSEG};
        start[1] = rank * PERSEG;
        H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
        hid_t dset = H5Dcreate(in, dsname(v), H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
        H5Dwrite(dset, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
        H5Dclose(dset);
        H5Sclose(sp);
    }

    for (int v = 0; v < VARS; v++) {
        hsize_t dims[2] = {SEGMENTS, 0};
        dims[1] = nprocs * PERSEG;
        hid_t sp = H5Screate_simple(2, dims, NULL);
        hsize_t start[2] = {0, 0};
        hsize_t count[2] = {SEGMENTS, PERSEG};
        start[1] = rank * PERSEG;
        H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
        hid_t dset = H5Dopen(in, dsname(v), H5P_DEFAULT);
        H5Dread(dset, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
        H5Dclose(dset);
        H5Sclose(sp);
    }

    compute_flops(%g);

    hid_t out = H5Fcreate(%q, H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    hsize_t total[1] = {0};
    total[0] = nprocs * PARTICLES;
    hid_t sp = H5Screate_simple(1, total, NULL);
    hsize_t start[1] = {0};
    hsize_t count[1] = {PARTICLES};
    start[0] = rank * PARTICLES;
    H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
    hid_t labels = H5Dcreate(out, "cluster_id", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    H5Dwrite(labels, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    H5Dclose(labels);
    H5Sclose(sp);
    H5Fclose(out);
    H5Fclose(in);
    MPI_Finalize();
    return 0;
}
`, b.ParticlesPerRank, b.Vars, b.Segments, b.InPath, b.ComputeFlops+1, b.OutPath)
}

// HasCSource is implemented by workloads with a C-source form. The
// generated sources call the interpreter builtin dsname(i) to derive
// unique dataset names.
type HasCSource interface {
	Workload
	CSource() string
}
