package workload

import (
	"fmt"

	"tunio/internal/hdf5"
)

// VPIC models the VPIC-IO kernel: a particle-in-cell plasma simulation
// dump. Every rank appends its particles' properties to shared 1-D
// datasets, one per property (x, y, z, ux, uy, uz, i1, i2) — large
// contiguous per-rank blocks, the classic H5Part pattern.
type VPIC struct {
	Procs            int
	ParticlesPerRank int64
	Vars             int
	Steps            int
	// Segments models the H5Part-style interleaving of each rank's block:
	// the dataset is [Segments, procs*perSeg] and every rank writes a
	// strided column, so untuned independent I/O issues many medium
	// requests that collective buffering must coalesce.
	Segments     int64
	ComputeFlops float64 // per process per step; 0 for the I/O kernel
	Path         string
}

// NewVPIC returns a VPIC sized like the paper's component tests.
func NewVPIC(procs int) *VPIC {
	return &VPIC{
		Procs:            procs,
		ParticlesPerRank: 512 << 10, // 512Ki particles x 8B = 4 MiB per var per rank
		Vars:             8,
		Steps:            2,
		Segments:         16,
		ComputeFlops:     0,
		Path:             "/scratch/vpic.h5",
	}
}

// Name implements Workload.
func (v *VPIC) Name() string { return "vpic" }

// TotalBytes returns the bytes one run writes.
func (v *VPIC) TotalBytes() int64 {
	return int64(v.Vars) * int64(v.Steps) * int64(v.Procs) * v.ParticlesPerRank * 8
}

// Run implements Workload.
func (v *VPIC) Run(st *Stack) error {
	lib := st.Lib
	f, err := lib.CreateFile(v.Path)
	if err != nil {
		return err
	}
	names := []string{"x", "y", "z", "ux", "uy", "uz", "i1", "i2", "q", "w"}
	dims, slabs := segmented(v.Procs, v.ParticlesPerRank, v.Segments)
	for step := 0; step < v.Steps; step++ {
		if v.ComputeFlops > 0 {
			st.Sim.Compute(v.ComputeFlops)
		}
		for vi := 0; vi < v.Vars; vi++ {
			space, err := hdf5.NewSpace(dims, 8)
			if err != nil {
				return err
			}
			name := fmt.Sprintf("step%d/%s", step, names[vi%len(names)])
			ds, err := f.CreateDataset(name, space, nil)
			if err != nil {
				return err
			}
			if _, err := ds.Write(slabs); err != nil {
				return err
			}
		}
	}
	return f.Close()
}

// HACC models the HACC-IO kernel: cosmology particles, nine properties per
// particle (xx, yy, zz, vx, vy, vz, phi, pid, mask) written as contiguous
// per-rank blocks into shared 1-D datasets.
type HACC struct {
	Procs            int
	ParticlesPerRank int64
	Steps            int
	Segments         int64 // per-rank block interleaving (see VPIC)
	ComputeFlops     float64
	Path             string
}

// NewHACC returns a HACC sized like the paper's component tests.
func NewHACC(procs int) *HACC {
	return &HACC{
		Procs:            procs,
		ParticlesPerRank: 512 << 10,
		Steps:            2,
		Segments:         16,
		ComputeFlops:     0,
		Path:             "/scratch/hacc.h5",
	}
}

// Name implements Workload.
func (h *HACC) Name() string { return "hacc" }

// TotalBytes returns the bytes one run writes.
func (h *HACC) TotalBytes() int64 {
	return 9 * int64(h.Steps) * int64(h.Procs) * h.ParticlesPerRank * 8
}

// Run implements Workload.
func (h *HACC) Run(st *Stack) error {
	f, err := st.Lib.CreateFile(h.Path)
	if err != nil {
		return err
	}
	names := []string{"xx", "yy", "zz", "vx", "vy", "vz", "phi", "pid", "mask"}
	dims, slabs := segmented(h.Procs, h.ParticlesPerRank, h.Segments)
	for step := 0; step < h.Steps; step++ {
		if h.ComputeFlops > 0 {
			st.Sim.Compute(h.ComputeFlops)
		}
		for _, n := range names {
			space, err := hdf5.NewSpace(dims, 8)
			if err != nil {
				return err
			}
			ds, err := f.CreateDataset(fmt.Sprintf("step%d/%s", step, n), space, nil)
			if err != nil {
				return err
			}
			if _, err := ds.Write(slabs); err != nil {
				return err
			}
		}
	}
	return f.Close()
}

// FLASH models the FLASH-IO checkpoint benchmark: an AMR code writing a
// 4-D dataset [blocks, nxb, nyb, nzb] per unknown variable; each rank owns
// a contiguous range of blocks. Chunked layout (one chunk per block row)
// produces the chunk/stripe interactions the paper's HDF5 parameters tune.
type FLASH struct {
	Procs         int
	BlocksPerRank int64
	NXB, NYB, NZB int64
	Unknowns      int
	Steps         int
	ComputeFlops  float64
	Path          string
}

// NewFLASH returns a FLASH sized like the paper's component tests.
func NewFLASH(procs int) *FLASH {
	return &FLASH{
		Procs:         procs,
		BlocksPerRank: 64,
		NXB:           16, NYB: 16, NZB: 16,
		Unknowns:     10,
		Steps:        1,
		ComputeFlops: 0,
		Path:         "/scratch/flash.h5",
	}
}

// Name implements Workload.
func (fl *FLASH) Name() string { return "flash" }

// TotalBytes returns the bytes one checkpoint writes.
func (fl *FLASH) TotalBytes() int64 {
	return int64(fl.Unknowns) * int64(fl.Steps) * int64(fl.Procs) * fl.BlocksPerRank * fl.NXB * fl.NYB * fl.NZB * 8
}

// Run implements Workload.
func (fl *FLASH) Run(st *Stack) error {
	f, err := st.Lib.CreateFile(fl.Path)
	if err != nil {
		return err
	}
	totalBlocks := int64(fl.Procs) * fl.BlocksPerRank
	for step := 0; step < fl.Steps; step++ {
		if fl.ComputeFlops > 0 {
			st.Sim.Compute(fl.ComputeFlops)
		}
		for u := 0; u < fl.Unknowns; u++ {
			space, err := hdf5.NewSpace([]int64{totalBlocks, fl.NXB, fl.NYB, fl.NZB}, 8)
			if err != nil {
				return err
			}
			// one chunk per 8 blocks: rank slabs partially cover chunks,
			// exercising the chunk cache and alignment parameters
			chunk := []int64{8, fl.NXB, fl.NYB, fl.NZB}
			ds, err := f.CreateDataset(fmt.Sprintf("step%d/unk%02d", step, u), space, chunk)
			if err != nil {
				return err
			}
			slabs := make([]hdf5.Slab, fl.Procs)
			for r := 0; r < fl.Procs; r++ {
				slabs[r] = hdf5.Slab{
					Rank:  r,
					Start: []int64{int64(r) * fl.BlocksPerRank, 0, 0, 0},
					Count: []int64{fl.BlocksPerRank, fl.NXB, fl.NYB, fl.NZB},
				}
			}
			if _, err := ds.Write(slabs); err != nil {
				return err
			}
		}
	}
	return f.Close()
}

// BDCATS models the BD-CATS clustering pipeline: a read-dominated
// analytics job that loads particle datasets written by a VPIC-style dump
// and writes back cluster assignments. The paper's end-to-end evaluation
// tunes BD-CATS at 500 nodes.
type BDCATS struct {
	Procs            int
	ParticlesPerRank int64
	Vars             int
	Segments         int64 // interleaving of the staged VPIC-style input
	ComputeFlops     float64
	InPath, OutPath  string
}

// NewBDCATS returns a BD-CATS sized like the paper's end-to-end test.
func NewBDCATS(procs int) *BDCATS {
	return &BDCATS{
		Procs:            procs,
		ParticlesPerRank: 1 << 20,
		Vars:             6, // x, y, z, ux, uy, uz read for clustering
		Segments:         16,
		ComputeFlops:     0,
		InPath:           "/scratch/vpic-input.h5",
		OutPath:          "/scratch/bdcats-out.h5",
	}
}

// Name implements Workload.
func (b *BDCATS) Name() string { return "bdcats" }

// TotalBytes returns read+written bytes of one run.
func (b *BDCATS) TotalBytes() int64 {
	per := int64(b.Procs) * b.ParticlesPerRank * 8
	return int64(b.Vars)*per + per // reads + label writes
}

// Run implements Workload.
func (b *BDCATS) Run(st *Stack) error {
	lib := st.Lib
	total := int64(b.Procs) * b.ParticlesPerRank
	dims, slabs := segmented(b.Procs, b.ParticlesPerRank, b.Segments)

	// Stage the input dump (written once by the producer; simulated here so
	// the file exists, charged to a separate pre-phase not counted in perf).
	in, err := lib.CreateFile(b.InPath)
	if err != nil {
		return err
	}
	var inSets []*hdf5.Dataset
	for v := 0; v < b.Vars; v++ {
		space, err := hdf5.NewSpace(dims, 8)
		if err != nil {
			return err
		}
		ds, err := in.CreateDataset(fmt.Sprintf("v%d", v), space, nil)
		if err != nil {
			return err
		}
		if _, err := ds.Write(slabs); err != nil {
			return err
		}
		inSets = append(inSets, ds)
	}

	// Analytics phase: read all properties, cluster, write labels.
	for _, ds := range inSets {
		if _, err := ds.Read(slabs); err != nil {
			return err
		}
	}
	if b.ComputeFlops > 0 {
		st.Sim.Compute(b.ComputeFlops)
	}
	out, err := lib.CreateFile(b.OutPath)
	if err != nil {
		return err
	}
	space, err := hdf5.NewSpace([]int64{total}, 8)
	if err != nil {
		return err
	}
	labels, err := out.CreateDataset("cluster_id", space, nil)
	if err != nil {
		return err
	}
	if _, err := labels.Write(collectSlabs1D(b.Procs, b.ParticlesPerRank)); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	return in.Close()
}

// MACSio models the MACSio multi-purpose, application-centric I/O proxy:
// a workload generator with configurable parts per rank, bytes per part,
// dump count, and compute-to-I/O ratio. The paper's Figure 8 experiments
// run MACSio with the compute ratio baselined on VPIC's Dipole
// configuration.
type MACSio struct {
	Procs        int
	PartsPerRank int64
	PartBytes    int64
	Dumps        int
	ComputeFlops float64 // per process per dump
	Path         string
}

// NewMACSio returns a MACSio configuration matching Figure 8's setup: the
// compute phase is sized so compute is roughly 1/6 of untuned runtime (the
// VPIC Dipole compute-to-I/O ratio the paper baselines against).
func NewMACSio(procs int) *MACSio {
	return &MACSio{
		Procs:        procs,
		PartsPerRank: 4,
		PartBytes:    4 << 20,
		Dumps:        25,
		ComputeFlops: 6e9,
		Path:         "/scratch/macsio.h5",
	}
}

// Name implements Workload.
func (m *MACSio) Name() string { return "macsio" }

// TotalBytes returns the bytes all dumps write.
func (m *MACSio) TotalBytes() int64 {
	return int64(m.Dumps) * int64(m.Procs) * m.PartsPerRank * m.PartBytes
}

// Run implements Workload.
func (m *MACSio) Run(st *Stack) error {
	f, err := st.Lib.CreateFile(m.Path)
	if err != nil {
		return err
	}
	perRank := m.PartsPerRank * m.PartBytes / 8 // elements of 8 bytes
	dims, slabs := segmented(m.Procs, perRank, m.PartsPerRank)
	for dump := 0; dump < m.Dumps; dump++ {
		if m.ComputeFlops > 0 {
			st.Sim.Compute(m.ComputeFlops)
		}
		space, err := hdf5.NewSpace(dims, 8)
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset(fmt.Sprintf("dump%03d", dump), space, nil)
		if err != nil {
			return err
		}
		if _, err := ds.Write(slabs); err != nil {
			return err
		}
	}
	return f.Close()
}
