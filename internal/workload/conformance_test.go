package workload

import (
	"testing"

	"tunio/internal/cinterp"
	"tunio/internal/csrc"
)

// TestCSourceConformance asserts each workload's C-source form, executed
// by the SPMD interpreter, emits the same application-level I/O footprint
// as the native Go form.
func TestCSourceConformance(t *testing.T) {
	c := testCluster()
	settings := defaultSettings()

	shrink := func(w Workload) {
		switch x := w.(type) {
		case *VPIC:
			x.ParticlesPerRank = 16 << 10
			x.ComputeFlops = 1e9
		case *HACC:
			x.ParticlesPerRank = 16 << 10
		case *FLASH:
			x.BlocksPerRank = 8
			x.Unknowns = 3
		case *BDCATS:
			x.ParticlesPerRank = 16 << 10
		case *MACSio:
			x.PartsPerRank = 2
			x.PartBytes = 256 << 10
			x.Dumps = 3
		}
	}

	for _, name := range []string{"vpic", "hacc", "flash", "bdcats", "macsio"} {
		w, err := ByName(name, c.Procs())
		if err != nil {
			t.Fatal(err)
		}
		shrink(w)
		cw, ok := w.(HasCSource)
		if !ok {
			t.Fatalf("%s has no C source form", name)
		}

		// native Go form
		native, err := Execute(w, c, settings, 99)
		if err != nil {
			t.Fatalf("%s native: %v", name, err)
		}

		// C form through the interpreter
		prog, err := csrc.Parse(cw.CSource())
		if err != nil {
			t.Fatalf("%s C source does not parse: %v", name, err)
		}
		st, err := BuildStack(c, settings, 99)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cinterp.Run(prog, st.Lib); err != nil {
			t.Fatalf("%s C form failed: %v", name, err)
		}

		nApp := native.Report.App()
		cApp := st.Sim.Report.App()
		if nApp.BytesWritten != cApp.BytesWritten {
			t.Errorf("%s: C form wrote %d bytes, native %d", name, cApp.BytesWritten, nApp.BytesWritten)
		}
		if nApp.BytesRead != cApp.BytesRead {
			t.Errorf("%s: C form read %d bytes, native %d", name, cApp.BytesRead, nApp.BytesRead)
		}
		if nApp.WriteOps != cApp.WriteOps {
			t.Errorf("%s: C form %d write ops, native %d", name, cApp.WriteOps, nApp.WriteOps)
		}
	}
}
