package workload

import (
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
)

func testCluster() *cluster.Cluster {
	c := cluster.CoriHaswell(4, 32)
	c.Noise = 0
	return c
}

func defaultSettings() params.StackSettings {
	return params.DefaultAssignment(params.Space()).Settings()
}

// tunedSettings is a reasonable hand-tuned configuration.
func tunedSettings(t *testing.T) params.StackSettings {
	t.Helper()
	a := params.DefaultAssignment(params.Space())
	for name, idx := range map[string]int{
		params.StripingFactor:    9, // 64 OSTs
		params.StripingUnit:      6, // 4 MiB
		params.CollectiveWrite:   1,
		params.CBNodes:           2, // 4 aggregators
		params.CBBufferSize:      6, // 64 MiB
		params.Alignment:         5, // 4 MiB
		params.CollMetadataOps:   1,
		params.CollMetadataWrite: 1,
		params.MDCConfig:         2,
		params.ChunkCache:        6, // 64 MiB
	} {
		if err := a.SetIndex(name, idx); err != nil {
			t.Fatal(err)
		}
	}
	return a.Settings()
}

func TestBuildStack(t *testing.T) {
	st, err := BuildStack(testCluster(), defaultSettings(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sim == nil || st.FS == nil || st.Mem == nil || st.Lib == nil {
		t.Fatal("incomplete stack")
	}
	if st.Lib.Nprocs() != 128 {
		t.Fatalf("nprocs = %d", st.Lib.Nprocs())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"vpic", "hacc", "flash", "bdcats", "macsio"} {
		w, err := ByName(name, 128)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != name {
			t.Fatalf("Name() = %q, want %q", w.Name(), name)
		}
	}
	if _, err := ByName("nope", 128); err == nil {
		t.Fatal("unknown workload: want error")
	}
}

func TestAllWorkloadsRunAndReportBytes(t *testing.T) {
	c := testCluster()
	type sized interface {
		Workload
		TotalBytes() int64
	}
	for _, name := range []string{"vpic", "hacc", "flash", "macsio"} {
		w, _ := ByName(name, c.Procs())
		res, err := Execute(w, c, defaultSettings(), 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Runtime <= 0 || res.Perf <= 0 {
			t.Fatalf("%s: runtime %v perf %v", name, res.Runtime, res.Perf)
		}
		want := w.(sized).TotalBytes()
		if got := res.Report.App().BytesWritten; got != want {
			t.Fatalf("%s: wrote %d app bytes, want %d", name, got, want)
		}
		if res.Alpha != 1 {
			t.Fatalf("%s: write-only workload has alpha %v", name, res.Alpha)
		}
	}
}

func TestBDCATSIsReadDominated(t *testing.T) {
	c := testCluster()
	w := NewBDCATS(c.Procs())
	res, err := Execute(w, c, defaultSettings(), 42)
	if err != nil {
		t.Fatal(err)
	}
	app := res.Report.App()
	if app.BytesRead <= 0 {
		t.Fatal("BD-CATS read nothing")
	}
	// 6 vars read vs 7 dataset-writes (6 staged inputs + labels): the
	// analytics phase itself is read-dominated but staging writes count too.
	if app.BytesRead < 6*int64(c.Procs())*(1<<20)*8 {
		t.Fatalf("read bytes = %d", app.BytesRead)
	}
	if res.Alpha <= 0 || res.Alpha >= 1 {
		t.Fatalf("alpha = %v, want mixed read/write", res.Alpha)
	}
}

func TestTunedBeatsDefault(t *testing.T) {
	// The central premise of the paper: the untuned stack leaves large
	// performance on the table. Require >= 2x for the particle workloads.
	c := testCluster()
	for _, name := range []string{"vpic", "hacc", "flash"} {
		w, _ := ByName(name, c.Procs())
		def, err := Execute(w, c, defaultSettings(), 7)
		if err != nil {
			t.Fatal(err)
		}
		tun, err := Execute(w, c, tunedSettings(t), 7)
		if err != nil {
			t.Fatal(err)
		}
		if tun.Perf < 2*def.Perf {
			t.Fatalf("%s: tuned %.1f MB/s vs default %.1f MB/s, want >= 2x", name, tun.Perf, def.Perf)
		}
	}
}

func TestComputeAddsRuntimeNotPerf(t *testing.T) {
	c := testCluster()
	kernel := NewVPIC(c.Procs())
	full := NewVPIC(c.Procs())
	full.ComputeFlops = 3e10 // ~2s at 1.5e10 flop/s
	rk, err := Execute(kernel, c, defaultSettings(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Execute(full, c, defaultSettings(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Runtime <= rk.Runtime {
		t.Fatal("compute phase did not increase runtime")
	}
	// Perf measures I/O bandwidth only; compute must not change it much.
	if rel := (rf.Perf - rk.Perf) / rk.Perf; rel > 0.01 || rel < -0.01 {
		t.Fatalf("perf changed by %.2f%% due to compute", rel*100)
	}
}

func TestExecuteAveraged(t *testing.T) {
	c := cluster.CoriHaswell(4, 32) // with noise
	w := NewVPIC(c.Procs())
	single, err := Execute(w, c, defaultSettings(), 5)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := ExecuteAveraged(w, c, defaultSettings(), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Runtime <= 2*single.Runtime {
		t.Fatalf("3-run averaged runtime %v should accumulate ~3x single %v", avg.Runtime, single.Runtime)
	}
	if avg.Perf <= 0 {
		t.Fatal("averaged perf missing")
	}
	// reps < 1 clamps
	if _, err := ExecuteAveraged(w, c, defaultSettings(), 5, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	c := cluster.CoriHaswell(4, 32)
	w := NewVPIC(c.Procs())
	a, _ := Execute(w, c, defaultSettings(), 11)
	b, _ := Execute(w, c, defaultSettings(), 11)
	if a.Runtime != b.Runtime || a.Perf != b.Perf {
		t.Fatal("same seed produced different results")
	}
	c2, _ := Execute(w, c, defaultSettings(), 12)
	if a.Runtime == c2.Runtime {
		t.Fatal("different seeds produced identical noisy results")
	}
}

func TestMemPathWorkload(t *testing.T) {
	c := testCluster()
	scratch := NewMACSio(c.Procs())
	shm := NewMACSio(c.Procs())
	shm.Path = "/dev/shm/macsio.h5"
	rs, err := Execute(scratch, c, defaultSettings(), 9)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Execute(shm, c, defaultSettings(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Runtime >= rs.Runtime {
		t.Fatalf("/dev/shm run (%.3fs) not faster than scratch (%.3fs)", rm.Runtime, rs.Runtime)
	}
}
