// Package workload provides the application models TunIO's evaluation
// tunes: VPIC-IO, HACC-IO, FLASH-IO, BD-CATS, and the MACSio workload
// generator. Each drives the simulated HDF5/MPI-IO/Lustre stack with the
// I/O pattern of the real application (particle dumps, AMR checkpoints,
// analytics read phases) plus configurable compute phases for the full-
// application (non-kernel) forms.
//
// The same applications also exist as embedded C sources (csource.go) for
// the Application I/O Discovery pipeline; a conformance test asserts both
// forms emit the same I/O footprint.
package workload

import (
	"fmt"

	"tunio/internal/cluster"
	"tunio/internal/darshan"
	"tunio/internal/hdf5"
	"tunio/internal/lustre"
	"tunio/internal/params"
	"tunio/internal/posixio"
)

// Stack is a fully constructed simulated I/O stack for one run.
type Stack struct {
	Sim *cluster.Sim
	FS  *lustre.FS
	Mem *posixio.MemFS
	Lib *hdf5.Library

	// lb is the lustre backend behind Lib's resolver, kept so pooled
	// resets can restripe it in place instead of rebuilding the wiring.
	lb *lustre.Backend
}

// BuildStack wires cluster -> lustre/mem -> mpiio -> hdf5 for the given
// parameter settings. Each run gets a fresh stack (fresh clock, counters,
// and noise stream).
func BuildStack(c *cluster.Cluster, s params.StackSettings, seed int64) (*Stack, error) {
	sim, err := cluster.NewSim(c, seed)
	if err != nil {
		return nil, err
	}
	fs, err := lustre.New(lustre.CoriScratch(), sim)
	if err != nil {
		return nil, err
	}
	st := &Stack{Sim: sim, FS: fs, Mem: posixio.NewMemFS(sim)}
	if err := st.rewire(s); err != nil {
		return nil, err
	}
	return st, nil
}

// Workload is a runnable application model.
type Workload interface {
	Name() string
	Run(st *Stack) error
}

// RunResult summarizes one execution.
type RunResult struct {
	// Runtime is the simulated wall time of the run in seconds.
	Runtime float64
	// Perf is the paper's tuning objective in MB/s:
	// (1-alpha)*BW_r + alpha*BW_w with alpha the written-byte fraction.
	Perf float64
	// Alpha is the written fraction of transferred bytes.
	Alpha float64
	// Report is the run's darshan report.
	Report *darshan.Report
}

// Perf computes the paper's objective from a report, in MB/s.
func Perf(r *darshan.Report) (perf, alpha float64) {
	alpha = r.WriteRatio()
	bw := (1-alpha)*r.ReadBandwidth() + alpha*r.WriteBandwidth()
	return bw / 1e6, alpha
}

// Execute builds a fresh stack, runs the workload, and summarizes it.
func Execute(w Workload, c *cluster.Cluster, s params.StackSettings, seed int64) (RunResult, error) {
	st, err := BuildStack(c, s, seed)
	if err != nil {
		return RunResult{}, err
	}
	if err := w.Run(st); err != nil {
		return RunResult{}, fmt.Errorf("workload %s: %w", w.Name(), err)
	}
	perf, alpha := Perf(st.Sim.Report)
	return RunResult{
		Runtime: st.Sim.Now(),
		Perf:    perf,
		Alpha:   alpha,
		Report:  st.Sim.Report,
	}, nil
}

// ExecuteAveraged runs the workload reps times with distinct seeds and
// averages perf (the paper performs 3 runs per configuration to mitigate
// platform volatility). Runtime accumulates across runs: the time cost of
// the extra runs is part of the tuning investment.
func ExecuteAveraged(w Workload, c *cluster.Cluster, s params.StackSettings, seed int64, reps int) (RunResult, error) {
	if reps < 1 {
		reps = 1
	}
	var out RunResult
	out.Report = darshan.NewReport()
	for i := 0; i < reps; i++ {
		r, err := Execute(w, c, s, seed+int64(i)*7919)
		if err != nil {
			return RunResult{}, err
		}
		out.Perf += r.Perf / float64(reps)
		out.Alpha += r.Alpha / float64(reps)
		out.Runtime += r.Runtime
		out.Report.Merge(r.Report)
	}
	return out, nil
}

// ByName returns a workload with default sizing for the cluster, or an
// error for unknown names. Valid names: vpic, hacc, flash, bdcats, macsio,
// ior.
func ByName(name string, procs int) (Workload, error) {
	switch name {
	case "vpic":
		return NewVPIC(procs), nil
	case "hacc":
		return NewHACC(procs), nil
	case "flash":
		return NewFLASH(procs), nil
	case "bdcats":
		return NewBDCATS(procs), nil
	case "macsio":
		return NewMACSio(procs), nil
	case "ior":
		return NewIOR(procs), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
}

// collectSlabs1D builds the per-rank contiguous slabs of a 1-D dataset
// partitioned evenly across nprocs ranks.
func collectSlabs1D(nprocs int, perRank int64) []hdf5.Slab {
	slabs := make([]hdf5.Slab, nprocs)
	for r := 0; r < nprocs; r++ {
		slabs[r] = hdf5.Slab{
			Rank:  r,
			Start: []int64{int64(r) * perRank},
			Count: []int64{perRank},
		}
	}
	return slabs
}

// segmented builds the [segments, procs*perSeg] dataspace dims and the
// per-rank strided column slabs modeling interleaved per-rank blocks
// (H5Part/MACSio part layout). segments is clamped to a divisor of
// perRank so every segment is equal-sized.
func segmented(nprocs int, perRank, segments int64) ([]int64, []hdf5.Slab) {
	if segments < 1 {
		segments = 1
	}
	if segments > perRank {
		segments = perRank
	}
	for perRank%segments != 0 {
		segments--
	}
	perSeg := perRank / segments
	dims := []int64{segments, int64(nprocs) * perSeg}
	slabs := make([]hdf5.Slab, nprocs)
	for r := 0; r < nprocs; r++ {
		slabs[r] = hdf5.Slab{
			Rank:  r,
			Start: []int64{0, int64(r) * perSeg},
			Count: []int64{segments, perSeg},
		}
	}
	return dims, slabs
}
