package workload

import (
	"fmt"

	"tunio/internal/hdf5"
)

// IOR models the ubiquitous IOR benchmark in its HDF5 backend: every rank
// writes (and optionally reads back) BlockSize bytes per segment in
// TransferSize chunks, either into a shared file (the default, matching
// the paper's shared-dataset workloads) or conceptually file-per-process
// (FilePerProc). It is the canonical synthetic probe a downstream user
// would reach for to explore the simulated stack's behavior.
type IOR struct {
	Procs        int
	TransferSize int64 // bytes per I/O request (-t)
	BlockSize    int64 // bytes per rank per segment (-b)
	Segments     int   // repetitions (-s)
	ReadBack     bool  // -r: read verification pass
	FilePerProc  bool  // -F: one file per process
	Path         string
}

// NewIOR returns an IOR configuration with the classic defaults
// (t=1MiB, b=16MiB, s=4, shared file, write+read).
func NewIOR(procs int) *IOR {
	return &IOR{
		Procs:        procs,
		TransferSize: 1 << 20,
		BlockSize:    16 << 20,
		Segments:     4,
		ReadBack:     true,
		Path:         "/scratch/ior.h5",
	}
}

// Name implements Workload.
func (b *IOR) Name() string { return "ior" }

// TotalBytes returns written bytes (plus the same again read when
// ReadBack is set).
func (b *IOR) TotalBytes() int64 {
	total := int64(b.Procs) * b.BlockSize * int64(b.Segments)
	if b.ReadBack {
		total *= 2
	}
	return total
}

// Run implements Workload.
func (b *IOR) Run(st *Stack) error {
	if b.TransferSize <= 0 || b.BlockSize <= 0 || b.Segments <= 0 {
		return fmt.Errorf("ior: invalid geometry t=%d b=%d s=%d", b.TransferSize, b.BlockSize, b.Segments)
	}
	if b.BlockSize%b.TransferSize != 0 {
		return fmt.Errorf("ior: BlockSize %d not a multiple of TransferSize %d", b.BlockSize, b.TransferSize)
	}
	transfers := b.BlockSize / b.TransferSize

	if b.FilePerProc {
		return b.runFilePerProc(st, transfers)
	}

	// Shared file: a [transfers, procs*perSeg] dataspace per segment, each
	// rank writing a strided column of TransferSize rows — IOR's
	// "segmented" shared layout.
	f, err := st.Lib.CreateFile(b.Path)
	if err != nil {
		return err
	}
	perSeg := b.TransferSize / 8
	dims := []int64{transfers, int64(b.Procs) * perSeg}
	slabs := make([]hdf5.Slab, b.Procs)
	for r := 0; r < b.Procs; r++ {
		slabs[r] = hdf5.Slab{
			Rank:  r,
			Start: []int64{0, int64(r) * perSeg},
			Count: []int64{transfers, perSeg},
		}
	}
	var sets []*hdf5.Dataset
	for s := 0; s < b.Segments; s++ {
		space, err := hdf5.NewSpace(dims, 8)
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset(fmt.Sprintf("seg%03d", s), space, nil)
		if err != nil {
			return err
		}
		if _, err := ds.Write(slabs); err != nil {
			return err
		}
		sets = append(sets, ds)
	}
	if b.ReadBack {
		for _, ds := range sets {
			if _, err := ds.Read(slabs); err != nil {
				return err
			}
		}
	}
	return f.Close()
}

// runFilePerProc writes one file per process: no sharing, so collective
// buffering is irrelevant but metadata (one create per rank) dominates at
// scale.
func (b *IOR) runFilePerProc(st *Stack, transfers int64) error {
	perSeg := b.TransferSize / 8
	for r := 0; r < b.Procs; r++ {
		f, err := st.Lib.CreateFile(fmt.Sprintf("%s.%05d", b.Path, r))
		if err != nil {
			return err
		}
		for s := 0; s < b.Segments; s++ {
			space, err := hdf5.NewSpace([]int64{transfers, perSeg}, 8)
			if err != nil {
				return err
			}
			ds, err := f.CreateDataset(fmt.Sprintf("seg%03d", s), space, nil)
			if err != nil {
				return err
			}
			slab := []hdf5.Slab{{Rank: r, Start: []int64{0, 0}, Count: []int64{transfers, perSeg}}}
			if _, err := ds.Write(slab); err != nil {
				return err
			}
			if b.ReadBack {
				if _, err := ds.Read(slab); err != nil {
					return err
				}
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
