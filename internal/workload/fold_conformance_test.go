package workload

import (
	"testing"

	"tunio/internal/cinterp"
	"tunio/internal/csrc"
)

// TestFoldPreservesSimulatedIO asserts the constant-folding pass is
// semantics-preserving on every real kernel: the folded program, run on an
// identically-seeded stack, produces the same simulated I/O footprint and
// the same simulated clock as the original — folding may only cut the
// interpreter's wall-clock, never change what the program does.
func TestFoldPreservesSimulatedIO(t *testing.T) {
	c := testCluster()
	settings := defaultSettings()

	for _, name := range []string{"vpic", "hacc", "flash", "bdcats", "macsio"} {
		w, err := ByName(name, c.Procs())
		if err != nil {
			t.Fatal(err)
		}
		cw, ok := w.(HasCSource)
		if !ok {
			t.Fatalf("%s has no C source form", name)
		}
		src := cw.CSource()

		run := func(prog *csrc.File) (*Stack, error) {
			st, err := BuildStack(c, settings, 1234)
			if err != nil {
				return nil, err
			}
			if _, err := cinterp.Run(prog, st.Lib); err != nil {
				return nil, err
			}
			return st, nil
		}

		plain, err := csrc.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		stPlain, err := run(plain)
		if err != nil {
			t.Fatalf("%s unfolded: %v", name, err)
		}

		folded, err := csrc.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := cinterp.Fold(folded)
		// FLASH's kernel expands every macro to a bare literal, leaving no
		// constant arithmetic; every other kernel carries foldable
		// expressions (macro arithmetic, sizeof, derived locals).
		if rep.FoldedExprs == 0 && name != "flash" {
			t.Errorf("%s: fold pass found nothing to fold in the kernel", name)
		}
		stFolded, err := run(folded)
		if err != nil {
			t.Fatalf("%s folded: %v", name, err)
		}

		a, b := *stPlain.Sim.Report.App(), *stFolded.Sim.Report.App()
		if a != b {
			t.Errorf("%s: folded app I/O footprint diverged:\n  unfolded %+v\n  folded   %+v", name, a, b)
		}
		if stPlain.Sim.Now() != stFolded.Sim.Now() {
			t.Errorf("%s: folded simulated clock %v != unfolded %v",
				name, stFolded.Sim.Now(), stPlain.Sim.Now())
		}
	}
}
