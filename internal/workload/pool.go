package workload

import (
	"sync"

	"tunio/internal/cluster"
	"tunio/internal/hdf5"
	"tunio/internal/ioreq"
	"tunio/internal/lustre"
	"tunio/internal/params"
	"tunio/internal/posixio"
)

// rewire binds a library for the given settings onto the stack's existing
// simulation and storage backends. The first call builds the lustre
// backend, resolver closure, and library; later calls — the pooled
// steady state — restripe the backend and rebind the library in place,
// so a reset allocates nothing.
func (st *Stack) rewire(s params.StackSettings) error {
	if st.lb != nil {
		st.lb.StripeCount, st.lb.StripeSize = s.StripeCount, s.StripeSize
		return st.Lib.Rebind(s.Hints, s.HDF5)
	}
	lb := &lustre.Backend{FS: st.FS, StripeCount: s.StripeCount, StripeSize: s.StripeSize}
	resolver := func(path string) ioreq.Backend {
		if posixio.IsMemPath(path) {
			return st.Mem
		}
		return lb
	}
	lib, err := hdf5.NewLibrary(st.Sim, resolver, s.Hints, s.HDF5, st.Sim.Cluster.Procs())
	if err != nil {
		return err
	}
	st.lb, st.Lib = lb, lib
	return nil
}

// Reset rewinds the stack for a fresh run under new settings and seed,
// reusing the simulation context and storage backends (with their scratch
// buffers) instead of rebuilding them. A reset stack is indistinguishable
// from a freshly built one: the clock, RNG stream, report counters, and
// file namespaces all start over.
func (st *Stack) Reset(s params.StackSettings, seed int64) error {
	st.Sim.Reset(seed)
	st.FS.Reset()
	st.Mem.Reset()
	return st.rewire(s)
}

// StackPool recycles stacks across evaluations of one cluster. Workers in
// a tuning pool Get a stack per run and Put it back, amortizing the lustre
// scratch and backend allocations over the whole tune.
type StackPool struct {
	C    *cluster.Cluster
	pool sync.Pool
}

// NewStackPool returns a pool building stacks over the cluster.
func NewStackPool(c *cluster.Cluster) *StackPool {
	return &StackPool{C: c}
}

// Get returns a stack configured for the settings and seed, reusing a
// pooled one when available.
func (p *StackPool) Get(s params.StackSettings, seed int64) (*Stack, error) {
	if v := p.pool.Get(); v != nil {
		st := v.(*Stack)
		if err := st.Reset(s, seed); err != nil {
			return nil, err
		}
		return st, nil
	}
	return BuildStack(p.C, s, seed)
}

// Put returns a stack to the pool for reuse.
func (p *StackPool) Put(st *Stack) {
	if st != nil {
		p.pool.Put(st)
	}
}
