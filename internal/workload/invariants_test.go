package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tunio/internal/cluster"
	"tunio/internal/params"
)

// TestStackInvariantsUnderRandomConfigs checks cross-layer conservation
// laws over random configurations and workloads: whatever the tuner tries,
// the simulated stack must never lose or invent application bytes, time
// must be positive and monotone, and perf must stay below the machine's
// hard ceilings.
func TestStackInvariantsUnderRandomConfigs(t *testing.T) {
	space := params.Space()
	c := cluster.CoriHaswell(2, 16)
	names := []string{"vpic", "hacc", "flash", "macsio", "bdcats"}

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		genome := make([]int, len(space))
		for gi := range genome {
			genome[gi] = rng.Intn(len(space[gi].Values))
		}
		a, err := params.FromGenome(space, genome)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		name := names[int(uint64(seed)%uint64(len(names)))]
		w, err := ByName(name, c.Procs())
		if err != nil {
			return false
		}
		shrinkFor(w)
		res, err := Execute(w, c, a.Settings(), seed)
		if err != nil {
			t.Logf("seed %d (%s): %v", seed, name, err)
			return false
		}
		app := res.Report.App()
		lus := res.Report.Layer("lustre")
		mem := res.Report.Layer("mem")

		// 1. Application bytes are conserved through the stack: the
		//    storage layers received at least the app payload (metadata
		//    writes add more; RMW adds reads).
		if lus.BytesWritten+mem.BytesWritten < app.BytesWritten {
			t.Logf("seed %d (%s): storage wrote %d+%d < app %d",
				seed, name, lus.BytesWritten, mem.BytesWritten, app.BytesWritten)
			return false
		}
		// 2. Time is positive and bandwidths are finite.
		if res.Runtime <= 0 || res.Perf <= 0 {
			t.Logf("seed %d (%s): runtime %v perf %v", seed, name, res.Runtime, res.Perf)
			return false
		}
		// 3. Perf never exceeds hard hardware ceilings: total OST
		//    bandwidth and total NIC bandwidth (x2 slack for noise).
		nicCeil := float64(c.Nodes) * c.NICBandwidth / 1e6
		ostCeil := 248 * 2.8e9 / 1e6
		ceil := nicCeil
		if ostCeil < ceil {
			ceil = ostCeil
		}
		if res.Perf > 2*ceil {
			t.Logf("seed %d (%s): perf %.0f MB/s exceeds ceiling %.0f", seed, name, res.Perf, ceil)
			return false
		}
		// 4. Alpha is a valid fraction.
		if res.Alpha < 0 || res.Alpha > 1 {
			t.Logf("seed %d (%s): alpha %v", seed, name, res.Alpha)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// shrinkFor reduces workload sizes so the property test stays fast.
func shrinkFor(w Workload) {
	switch x := w.(type) {
	case *VPIC:
		x.ParticlesPerRank = 32 << 10
		x.Steps = 1
	case *HACC:
		x.ParticlesPerRank = 32 << 10
		x.Steps = 1
	case *FLASH:
		x.BlocksPerRank = 8
		x.Unknowns = 3
	case *BDCATS:
		x.ParticlesPerRank = 32 << 10
	case *MACSio:
		x.PartsPerRank = 2
		x.PartBytes = 512 << 10
		x.Dumps = 3
	}
}

// TestMetadataKnobsOnlyAffectMetadata asserts that toggling the pure
// metadata parameters changes neither the application's data footprint
// nor the raw bytes stored.
func TestMetadataKnobsOnlyAffectMetadata(t *testing.T) {
	c := testCluster()
	w := NewVPIC(c.Procs())
	w.ParticlesPerRank = 64 << 10
	base := params.DefaultAssignment(params.Space())
	tweaked := params.DefaultAssignment(params.Space())
	tweaked.SetIndex(params.CollMetadataOps, 1)
	tweaked.SetIndex(params.CollMetadataWrite, 1)
	tweaked.SetIndex(params.MDCConfig, 3)
	tweaked.SetIndex(params.MetaBlockSize, 7)

	rb, err := Execute(w, c, base.Settings(), 5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Execute(w, c, tweaked.Settings(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Report.App().BytesWritten != rt.Report.App().BytesWritten {
		t.Fatalf("metadata knobs changed app bytes: %d vs %d",
			rb.Report.App().BytesWritten, rt.Report.App().BytesWritten)
	}
	if rb.Report.App().WriteOps != rt.Report.App().WriteOps {
		t.Fatal("metadata knobs changed app write ops")
	}
}

// TestStripingNeverChangesFootprint sweeps striping_factor over its whole
// range: bandwidth may change arbitrarily but the application footprint
// must not.
func TestStripingNeverChangesFootprint(t *testing.T) {
	c := testCluster()
	w := NewHACC(c.Procs())
	w.ParticlesPerRank = 32 << 10
	w.Steps = 1
	space := params.Space()
	var refBytes, refOps int64
	for vi := range space[params.Index(space, params.StripingFactor)].Values {
		a := params.DefaultAssignment(space)
		a.SetIndex(params.StripingFactor, vi)
		r, err := Execute(w, c, a.Settings(), 3)
		if err != nil {
			t.Fatal(err)
		}
		app := r.Report.App()
		if vi == 0 {
			refBytes, refOps = app.BytesWritten, app.WriteOps
			continue
		}
		if app.BytesWritten != refBytes || app.WriteOps != refOps {
			t.Fatalf("stripe idx %d changed footprint: %d/%d vs %d/%d",
				vi, app.BytesWritten, app.WriteOps, refBytes, refOps)
		}
	}
}

func TestIORSharedFile(t *testing.T) {
	c := testCluster()
	b := NewIOR(c.Procs())
	b.BlockSize = 4 << 20
	b.Segments = 2
	res, err := Execute(b, c, defaultSettings(), 8)
	if err != nil {
		t.Fatal(err)
	}
	app := res.Report.App()
	wantW := int64(c.Procs()) * b.BlockSize * int64(b.Segments)
	if app.BytesWritten != wantW || app.BytesRead != wantW {
		t.Fatalf("ior footprint: wrote %d read %d, want %d each", app.BytesWritten, app.BytesRead, wantW)
	}
	if res.Alpha != 0.5 {
		t.Fatalf("alpha = %v, want 0.5 (write+read)", res.Alpha)
	}
	// tuning must move IOR too
	tun, err := Execute(b, c, tunedSettings(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	if tun.Perf <= res.Perf {
		t.Fatalf("tuned IOR %.0f not above default %.0f", tun.Perf, res.Perf)
	}
}

func TestIORFilePerProc(t *testing.T) {
	c := cluster.CoriHaswell(1, 8)
	c.Noise = 0
	b := NewIOR(c.Procs())
	b.FilePerProc = true
	b.ReadBack = false
	b.BlockSize = 1 << 20
	b.Segments = 1
	res, err := Execute(b, c, defaultSettings(), 9)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(c.Procs()) * b.BlockSize
	if res.Report.App().BytesWritten != want {
		t.Fatalf("fpp wrote %d, want %d", res.Report.App().BytesWritten, want)
	}
}

func TestIORValidation(t *testing.T) {
	c := cluster.CoriHaswell(1, 2)
	c.Noise = 0
	bad := NewIOR(c.Procs())
	bad.TransferSize = 3 << 10
	bad.BlockSize = 10 << 10 // not a multiple
	if _, err := Execute(bad, c, defaultSettings(), 10); err == nil {
		t.Fatal("bad geometry: want error")
	}
	zero := NewIOR(c.Procs())
	zero.Segments = 0
	if _, err := Execute(zero, c, defaultSettings(), 10); err == nil {
		t.Fatal("zero segments: want error")
	}
	if w, err := ByName("ior", 8); err != nil || w.Name() != "ior" {
		t.Fatal("ByName(ior) broken")
	}
}
