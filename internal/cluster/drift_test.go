package cluster

import (
	"math"
	"testing"
)

func schedule() *Drift {
	return &Drift{
		Seed: 7,
		Regimes: []Regime{
			{Start: 0},
			{Start: 100, NICLoad: 0.5, OSTLoad: 0.4, MDSLoad: 0.3, Contention: 2},
			{Start: 200, SlowOSTs: 4, SlowFactor: 0.2},
		},
	}
}

func TestDriftValidate(t *testing.T) {
	if err := schedule().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Drift{
		{Regimes: []Regime{{Start: -1}}},
		{Regimes: []Regime{{Start: 10}, {Start: 5}}},
		{Regimes: []Regime{{NICLoad: 0.99}}},
		{Regimes: []Regime{{OSTLoad: -0.1}}},
		{Regimes: []Regime{{SlowOSTs: -1}}},
		{Regimes: []Regime{{SlowFactor: 2}}},
		{Regimes: []Regime{{Contention: math.Inf(1)}}},
		{Regimes: []Regime{{Start: math.NaN()}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestDriftRegimeLookup(t *testing.T) {
	d := schedule()
	if d.RegimeIndex(-5) != -1 {
		t.Fatal("before schedule must be nominal")
	}
	if d.RegimeIndex(0) != 0 || d.RegimeIndex(99.9) != 0 {
		t.Fatal("first regime lookup wrong")
	}
	if d.RegimeIndex(100) != 1 || d.RegimeIndex(150) != 1 {
		t.Fatal("second regime lookup wrong")
	}
	if d.RegimeIndex(1e9) != 2 {
		t.Fatal("last regime must extend forever")
	}
}

func TestDriftFactors(t *testing.T) {
	d := schedule()
	if d.NICFactor(50) != 1 || d.OSTFactor(50, 3, 16) != 1 || d.MDSFactor(50) != 1 || d.ContentionScale(50) != 1 {
		t.Fatal("regime 0 must be nominal")
	}
	if f := d.NICFactor(150); f != 0.5 {
		t.Fatalf("NICFactor = %v, want 0.5", f)
	}
	if f := d.OSTFactor(150, 3, 16); math.Abs(f-0.6) > 1e-15 {
		t.Fatalf("OSTFactor = %v, want 0.6", f)
	}
	if f := d.MDSFactor(150); f != 0.7 {
		t.Fatalf("MDSFactor = %v, want 0.7", f)
	}
	if c := d.ContentionScale(150); c != 2 {
		t.Fatalf("ContentionScale = %v, want 2", c)
	}
}

func TestDriftSlowOSTSet(t *testing.T) {
	d := schedule()
	const osts = 16
	slow := 0
	for o := 0; o < osts; o++ {
		f := d.OSTFactor(250, o, osts)
		switch {
		case f == 1:
		case math.Abs(f-0.2) < 1e-15:
			slow++
		default:
			t.Fatalf("OST %d: unexpected factor %v", o, f)
		}
	}
	if slow != 4 {
		t.Fatalf("slow set size %d, want 4", slow)
	}
	// Determinism: the same schedule always degrades the same OSTs.
	for o := 0; o < osts; o++ {
		if d.OSTFactor(250, o, osts) != d.OSTFactor(300, o, osts) {
			t.Fatal("slow set must be stable within a regime")
		}
	}
	// A different seed picks a different block (with these constants).
	d2 := schedule()
	d2.Seed = 8
	same := true
	for o := 0; o < osts; o++ {
		if (d.OSTFactor(250, o, osts) < 1) != (d2.OSTFactor(250, o, osts) < 1) {
			same = false
		}
	}
	if same {
		t.Fatal("seed must influence the degraded set")
	}
	// Default SlowFactor applies when unset.
	d3 := &Drift{Regimes: []Regime{{SlowOSTs: osts}}}
	if f := d3.OSTFactor(0, 0, osts); f != defaultSlowFactor {
		t.Fatalf("default slow factor = %v, want %v", f, defaultSlowFactor)
	}
}

// TestDriftedShuffleChargesMore pins drift threading through the Sim:
// halving effective NIC bandwidth doubles the byte term of a shuffle.
func TestDriftedShuffleChargesMore(t *testing.T) {
	c := noiseless(2, 1)
	c.Drift = &Drift{Regimes: []Regime{{Start: 100, NICLoad: 0.5}}}
	s, _ := NewSim(c, 1)
	bytes := int64(2 * c.NICBandwidth)
	base := s.NetworkShuffle(bytes, 2, 2, 0)
	s.SetEpoch(100)
	loaded := s.NetworkShuffle(bytes, 2, 2, 0)
	if math.Abs(loaded-2*base) > 1e-9 {
		t.Fatalf("loaded shuffle %v, want 2x base %v", loaded, base)
	}
}

// TestNilDriftIsBitIdentical guards the stationary fast path: attaching
// no drift leaves every charge exactly as before.
func TestNilDriftIsBitIdentical(t *testing.T) {
	a, _ := NewSim(CoriHaswell(4, 32), 99)
	b, _ := NewSim(CoriHaswell(4, 32), 99)
	b.Cluster.Drift = nil
	for i := 0; i < 100; i++ {
		da := a.NetworkShuffle(1<<24, 4, 2, 32)
		db := b.NetworkShuffle(1<<24, 4, 2, 32)
		if da != db {
			t.Fatal("nil drift changed the charge")
		}
	}
}
