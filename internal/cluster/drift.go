package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Drift is a deterministic schedule of machine-condition regimes: the
// shared platform's background traffic, OST slowdowns, and contention
// phases as a function of absolute simulated time (Sim.Time). Every
// factor is a pure function of (schedule, time, OST index) — the model
// never consumes a Sim's RNG stream — so runs under drift stay
// bit-identical for a given seed at any evaluation parallelism, and a
// trace replayed at the epoch of a live window charges exactly the
// rates the live window would have seen.
//
// Regimes switch between phases, not mid-phase: each cost-charging call
// samples the schedule once at its start time. A long phase straddling
// a regime boundary is charged entirely at the regime it started in,
// which matches how the layers already treat the noise model.
type Drift struct {
	// Seed derives the identity of degraded OSTs per regime. It is
	// independent of any Sim seed: two runs with different Sim seeds see
	// the same machine.
	Seed int64 `json:"seed"`
	// Regimes is the schedule, sorted by ascending Start. Before the
	// first regime's Start the machine is nominal (all factors 1).
	Regimes []Regime `json:"regimes"`
}

// Regime is one contiguous phase of machine conditions, in effect from
// Start until the next regime's Start (or forever, for the last one).
// The zero value is a nominal machine.
type Regime struct {
	// Start is the absolute simulated timestamp (seconds) the regime
	// takes effect at.
	Start float64 `json:"start"`

	// NICLoad, OSTLoad, and MDSLoad are background-traffic fractions in
	// [0, maxLoad]: the share of per-node injection bandwidth, of every
	// OST's bandwidth, and of MDS service capacity consumed by other
	// tenants. Effective rate = nominal * (1 - load).
	NICLoad float64 `json:"nic_load,omitempty"`
	OSTLoad float64 `json:"ost_load,omitempty"`
	MDSLoad float64 `json:"mds_load,omitempty"`

	// SlowOSTs marks that many OSTs as degraded (failover to a partner,
	// rebuild traffic); they retain SlowFactor of their nominal
	// bandwidth (default 0.25 when SlowOSTs > 0). Which OSTs are slow is
	// derived from (Drift.Seed, regime index): deterministic, and
	// different regimes degrade different OSTs.
	SlowOSTs   int     `json:"slow_osts,omitempty"`
	SlowFactor float64 `json:"slow_factor,omitempty"`

	// Contention scales the file system's per-extra-client contention
	// factor (0 means nominal 1.0): co-tenant interleaving makes shared
	// OSTs degrade faster per additional client.
	Contention float64 `json:"contention,omitempty"`
}

// maxLoad caps background-traffic fractions so effective rates stay
// strictly positive.
const maxLoad = 0.95

// defaultSlowFactor is the bandwidth fraction degraded OSTs retain when
// a regime sets SlowOSTs without SlowFactor.
const defaultSlowFactor = 0.25

// Validate reports schedule errors.
func (d *Drift) Validate() error {
	prev := math.Inf(-1)
	for i, r := range d.Regimes {
		if r.Start < 0 || math.IsNaN(r.Start) || math.IsInf(r.Start, 0) {
			return fmt.Errorf("cluster: drift regime %d: Start must be finite and >= 0, got %v", i, r.Start)
		}
		if r.Start < prev {
			return fmt.Errorf("cluster: drift regime %d: Start %v before regime %d's %v (schedule must be sorted)", i, r.Start, i-1, prev)
		}
		prev = r.Start
		for _, l := range [3]float64{r.NICLoad, r.OSTLoad, r.MDSLoad} {
			if l < 0 || l > maxLoad || math.IsNaN(l) {
				return fmt.Errorf("cluster: drift regime %d: loads must be in [0, %v]", i, maxLoad)
			}
		}
		if r.SlowOSTs < 0 {
			return fmt.Errorf("cluster: drift regime %d: SlowOSTs must be >= 0, got %d", i, r.SlowOSTs)
		}
		if r.SlowFactor < 0 || r.SlowFactor > 1 || math.IsNaN(r.SlowFactor) {
			return fmt.Errorf("cluster: drift regime %d: SlowFactor must be in [0, 1], got %v", i, r.SlowFactor)
		}
		if r.Contention < 0 || math.IsNaN(r.Contention) || math.IsInf(r.Contention, 0) {
			return fmt.Errorf("cluster: drift regime %d: Contention must be finite and >= 0, got %v", i, r.Contention)
		}
	}
	return nil
}

// nominalRegime is returned for times before the first regime.
func nominalRegime() Regime { return Regime{} }

// RegimeIndex returns the index of the regime in effect at absolute
// time t, or -1 when t precedes the whole schedule (nominal machine).
func (d *Drift) RegimeIndex(t float64) int {
	// Schedules are short (a handful of phases); binary search keeps the
	// hot path O(log n) anyway.
	i := sort.Search(len(d.Regimes), func(i int) bool { return d.Regimes[i].Start > t })
	return i - 1
}

// RegimeAt returns the regime in effect at absolute time t (the nominal
// zero-value regime before the schedule starts).
func (d *Drift) RegimeAt(t float64) Regime {
	if i := d.RegimeIndex(t); i >= 0 {
		return d.Regimes[i]
	}
	return nominalRegime()
}

// NICFactor returns the effective fraction of per-node injection
// bandwidth available at absolute time t (1 = nominal).
func (d *Drift) NICFactor(t float64) float64 {
	return 1 - d.RegimeAt(t).NICLoad
}

// MDSFactor returns the effective fraction of MDS service capacity
// available at absolute time t.
func (d *Drift) MDSFactor(t float64) float64 {
	return 1 - d.RegimeAt(t).MDSLoad
}

// ContentionScale returns the multiplier on the file system's
// per-extra-client contention factor at absolute time t.
func (d *Drift) ContentionScale(t float64) float64 {
	if c := d.RegimeAt(t).Contention; c > 0 {
		return c
	}
	return 1
}

// OSTFactor returns the effective bandwidth fraction of OST ost (out of
// osts in the pool) at absolute time t: the background load applies to
// every OST, and the regime's degraded set additionally retains only
// SlowFactor. The degraded set is a contiguous block (mod pool size)
// whose start is hashed from (Seed, regime index), so membership is a
// pure O(1) predicate.
func (d *Drift) OSTFactor(t float64, ost, osts int) float64 {
	i := d.RegimeIndex(t)
	if i < 0 {
		return 1
	}
	r := d.Regimes[i]
	f := 1 - r.OSTLoad
	if r.SlowOSTs > 0 && osts > 0 {
		slow := r.SlowOSTs
		if slow > osts {
			slow = osts
		}
		start := int(mix64(uint64(d.Seed)^uint64(i)*0x9e3779b97f4a7c15) % uint64(osts))
		if off := ((ost-start)%osts + osts) % osts; off < slow {
			sf := r.SlowFactor
			if sf == 0 {
				sf = defaultSlowFactor
			}
			f *= sf
		}
	}
	return f
}

// mix64 is the splitmix64 finalizer: a cheap, well-mixed hash for
// deriving per-regime degraded-OST sets without touching any RNG.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
