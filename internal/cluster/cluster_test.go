package cluster

import (
	"math"
	"testing"
)

func noiseless(nodes, ppn int) *Cluster {
	c := CoriHaswell(nodes, ppn)
	c.Noise = 0
	return c
}

func TestValidate(t *testing.T) {
	good := CoriHaswell(4, 32)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Cluster{
		{Nodes: 0, ProcsPerNode: 1, NICBandwidth: 1, MemBandwidth: 1, FlopRate: 1},
		{Nodes: 1, ProcsPerNode: 1, NICBandwidth: 0, MemBandwidth: 1, FlopRate: 1},
		{Nodes: 1, ProcsPerNode: 1, NICBandwidth: 1, MemBandwidth: 1, FlopRate: 1, Noise: 0.9},
		{Nodes: 1, ProcsPerNode: 1, NICBandwidth: 1, MemBandwidth: 1, FlopRate: 1, NICLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestProcs(t *testing.T) {
	if CoriHaswell(4, 32).Procs() != 128 {
		t.Fatal("Procs wrong")
	}
}

func TestNewSimRejectsInvalid(t *testing.T) {
	if _, err := NewSim(&Cluster{}, 1); err == nil {
		t.Fatal("want error")
	}
}

func TestClockAdvances(t *testing.T) {
	s, err := NewSim(noiseless(2, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Now() != 0 {
		t.Fatal("clock should start at 0")
	}
	s.Advance(1.5)
	s.Advance(0.5)
	if s.Now() != 2 {
		t.Fatalf("Now = %v, want 2", s.Now())
	}
}

func TestAdvanceRejectsNegative(t *testing.T) {
	s, _ := NewSim(noiseless(1, 1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.Advance(-1)
}

func TestComputeCharges(t *testing.T) {
	c := noiseless(1, 1)
	s, _ := NewSim(c, 1)
	d := s.Compute(c.FlopRate * 2) // 2 seconds of flops
	if math.Abs(d-2) > 1e-12 || math.Abs(s.Now()-2) > 1e-12 {
		t.Fatalf("Compute elapsed %v, clock %v", d, s.Now())
	}
}

func TestPerturbNoiseless(t *testing.T) {
	s, _ := NewSim(noiseless(1, 1), 1)
	if s.Perturb(3.14) != 3.14 {
		t.Fatal("noiseless Perturb must be identity")
	}
}

func TestPerturbBoundedAndSeeded(t *testing.T) {
	c := CoriHaswell(1, 1) // Noise = 0.04
	a, _ := NewSim(c, 42)
	b, _ := NewSim(c, 42)
	for i := 0; i < 1000; i++ {
		pa := a.Perturb(1)
		pb := b.Perturb(1)
		if pa != pb {
			t.Fatal("same seed produced different noise")
		}
		if pa < 0.5 || pa > 1.5 {
			t.Fatalf("noise out of clamp range: %v", pa)
		}
	}
}

func TestNetworkShuffle(t *testing.T) {
	c := noiseless(4, 2)
	s, _ := NewSim(c, 1)
	// 2 destination nodes bound the transfer: bytes / (2 * NICBandwidth)
	bytes := int64(2 * c.NICBandwidth)
	d := s.NetworkShuffle(bytes, 4, 2, 0)
	if math.Abs(d-1) > 1e-9 {
		t.Fatalf("shuffle time = %v, want 1", d)
	}
	// message latency term
	d2 := s.NetworkShuffle(0, 4, 4, 100)
	if math.Abs(d2-100*c.NICLatency) > 1e-12 {
		t.Fatalf("latency-only shuffle = %v", d2)
	}
}

func TestNetworkShuffleClampsToClusterNodes(t *testing.T) {
	c := noiseless(2, 1)
	s, _ := NewSim(c, 1)
	bytes := int64(2 * c.NICBandwidth)
	// Requesting 100 nodes on both sides must clamp to the 2 real nodes.
	d := s.NetworkShuffle(bytes, 100, 100, 0)
	if math.Abs(d-1) > 1e-9 {
		t.Fatalf("clamped shuffle = %v, want 1", d)
	}
}

func TestNetworkShuffleValidation(t *testing.T) {
	s, _ := NewSim(noiseless(1, 1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.NetworkShuffle(-1, 1, 1, 0)
}

func TestBarrierScalesWithProcs(t *testing.T) {
	s, _ := NewSim(noiseless(16, 16), 1)
	small := s.Barrier(2)
	large := s.Barrier(256)
	if large <= small {
		t.Fatalf("barrier(256)=%v should exceed barrier(2)=%v", large, small)
	}
}

func TestBarrierRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -3} {
		for _, app := range []bool{false, true} {
			s, _ := NewSim(noiseless(1, 1), 1)
			hookFired := false
			s.BarrierHook = func(int) { hookFired = true }
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("Barrier(%d) app=%v: want panic", n, app)
					}
				}()
				if app {
					s.AppBarrier(n)
				} else {
					s.Barrier(n)
				}
			}()
			if hookFired {
				t.Errorf("AppBarrier(%d) fired the hook before validating", n)
			}
		}
	}
}

func TestAdvanceRejectsInf(t *testing.T) {
	s, _ := NewSim(noiseless(1, 1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on Advance(+Inf)")
		}
	}()
	s.Advance(math.Inf(1))
}

func TestNetworkShuffleRejectsNegativeMessages(t *testing.T) {
	s, _ := NewSim(noiseless(2, 1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on negative messages")
		}
	}()
	s.NetworkShuffle(1<<20, 1, 1, -5)
}

// TestPerturbMeanUnbiased pins the satellite fix: the symmetric clamp
// keeps the empirical mean factor at 1 even at the maximum permitted
// noise, where the old one-sided clamp inflated it by several percent.
func TestPerturbMeanUnbiased(t *testing.T) {
	for _, noise := range []float64{0.04, 0.2, 0.5} {
		c := noiseless(1, 1)
		c.Noise = noise
		s, _ := NewSim(c, 12345)
		const n = 200000
		sum := 0.0
		k := 3 * noise
		if k > 0.99 {
			k = 0.99
		}
		for i := 0; i < n; i++ {
			f := s.Perturb(1)
			if f < 1-k-1e-12 || f > 1+k+1e-12 {
				t.Fatalf("noise %v: factor %v outside [1-k, 1+k]", noise, f)
			}
			sum += f
		}
		mean := sum / n
		// stderr of the clamped mean is < noise/sqrt(n); 5 sigma margin.
		if tol := 5 * noise / math.Sqrt(n); math.Abs(mean-1) > tol {
			t.Errorf("noise %v: mean factor %v, want 1 +/- %v", noise, mean, tol)
		}
	}
}

func TestEpochAndTime(t *testing.T) {
	s, _ := NewSim(noiseless(1, 1), 1)
	s.SetEpoch(100)
	s.Advance(2)
	if s.Epoch() != 100 || s.Now() != 2 || s.Time() != 102 {
		t.Fatalf("epoch/now/time = %v/%v/%v", s.Epoch(), s.Now(), s.Time())
	}
	s.Reset(1)
	if s.Epoch() != 0 || s.Time() != 0 {
		t.Fatal("Reset must clear the epoch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on negative epoch")
		}
	}()
	s.SetEpoch(-1)
}

func TestComputeRejectsNegative(t *testing.T) {
	s, _ := NewSim(noiseless(1, 1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.Compute(-5)
}
