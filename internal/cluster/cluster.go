// Package cluster models the machine TunIO's simulated applications run on:
// compute nodes with NICs, a process layout, and a simulated clock with
// seeded noise.
//
// The paper evaluates on the Cori supercomputer's Haswell partition
// (16-core 2.3 GHz Xeon nodes, Lustre scratch with ~700 GB/s aggregate);
// CoriHaswell returns a cluster calibrated to that scale. All time in the
// simulation is virtual: layers compute phase durations from the model and
// advance the Sim clock, so experiments are deterministic under a seed and
// run in milliseconds of wall time.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"tunio/internal/darshan"
)

// Cluster describes the compute side of the machine.
type Cluster struct {
	Nodes        int
	ProcsPerNode int

	// NICBandwidth is the effective injection bandwidth per node in
	// bytes/second; NICLatency is the per-message latency in seconds.
	NICBandwidth float64
	NICLatency   float64

	// MemBandwidth is the per-node bandwidth of memory-backed files
	// (/dev/shm), used by I/O path switching.
	MemBandwidth float64

	// FlopRate is the per-process compute rate in FLOP/s, used to charge
	// time for application compute phases.
	FlopRate float64

	// Noise is the relative standard deviation of run-to-run variation
	// applied multiplicatively to phase durations (Cori is a volatile
	// shared platform; the paper averages 3 runs to mitigate it).
	Noise float64

	// Drift, when non-nil, makes the machine time-varying: a seeded,
	// deterministic schedule of background-traffic regimes that scale the
	// effective NIC/OST/MDS rates as a function of absolute simulated time
	// (Sim.Time). Nil keeps the historical stationary machine, bit for bit.
	Drift *Drift
}

// Procs returns the total number of processes.
func (c *Cluster) Procs() int { return c.Nodes * c.ProcsPerNode }

// Validate reports configuration errors.
func (c *Cluster) Validate() error {
	if c.Nodes <= 0 || c.ProcsPerNode <= 0 {
		return fmt.Errorf("cluster: need positive Nodes/ProcsPerNode, got %d/%d", c.Nodes, c.ProcsPerNode)
	}
	if c.NICBandwidth <= 0 || c.MemBandwidth <= 0 || c.FlopRate <= 0 {
		return fmt.Errorf("cluster: bandwidths and flop rate must be positive")
	}
	if c.NICLatency < 0 || c.Noise < 0 || c.Noise > 0.5 {
		return fmt.Errorf("cluster: NICLatency must be >= 0 and Noise in [0, 0.5]")
	}
	if c.Drift != nil {
		if err := c.Drift.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CoriHaswell returns a cluster calibrated to Cori's Haswell partition with
// the given allocation (the paper's component tests use 4 nodes x 32 procs;
// the end-to-end test uses a 500-node allocation).
func CoriHaswell(nodes, procsPerNode int) *Cluster {
	return &Cluster{
		Nodes:        nodes,
		ProcsPerNode: procsPerNode,
		NICBandwidth: 1.3e9,  // effective Aries injection per node
		NICLatency:   2e-6,   // seconds
		MemBandwidth: 6.0e9,  // /dev/shm effective stream bandwidth
		FlopRate:     1.5e10, // per-process sustained
		Noise:        0.04,
	}
}

// Sim is one simulated execution context: a clock, a seeded RNG for noise,
// and the darshan report of the run.
type Sim struct {
	Cluster *Cluster
	Report  *darshan.Report

	// ComputeHook, when set, observes every Compute call (used by the
	// trace recorder to capture compute phases).
	ComputeHook func(flops float64)

	// BarrierHook, when set, observes every AppBarrier call (used by the
	// trace recorder to capture application-level synchronization; internal
	// library barriers bypass it).
	BarrierHook func(n int)

	now   float64
	epoch float64
	rng   *rand.Rand
}

// NewSim returns a fresh simulation over the cluster.
func NewSim(c *Cluster, seed int64) (*Sim, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Sim{
		Cluster: c,
		Report:  darshan.NewReport(),
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// Now returns the simulated time in seconds since the start of this run.
func (s *Sim) Now() float64 { return s.now }

// SetEpoch positions the run on the machine's absolute timeline: Time
// returns epoch + Now, and the drift schedule (if any) is evaluated at
// that absolute time. Replaying a trace at the epoch of a live window
// therefore sees exactly the drift regime the live window would.
func (s *Sim) SetEpoch(t float64) {
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("cluster: SetEpoch(%v)", t))
	}
	s.epoch = t
}

// Epoch returns the absolute simulated time this run started at.
func (s *Sim) Epoch() float64 { return s.epoch }

// Time returns the absolute simulated time (epoch + Now), the timeline
// drift schedules are keyed on.
func (s *Sim) Time() float64 { return s.epoch + s.now }

// Advance moves the clock forward by d seconds (panics on negative,
// NaN, or infinite d, any of which would indicate a broken cost model).
func (s *Sim) Advance(d float64) {
	if d < 0 || math.IsNaN(d) || math.IsInf(d, 1) {
		panic(fmt.Sprintf("cluster: Advance(%v)", d))
	}
	s.now += d
}

// Perturb applies the cluster's run-to-run noise to a duration: a
// multiplicative factor drawn from a normal distribution with the
// configured relative stddev. The factor is clamped symmetrically to
// [1-k, 1+k] with k = min(3*Noise, 0.99): three standard deviations
// keep the tails from producing negative durations while leaving the
// expected factor at exactly 1 (a one-sided clamp would inflate the
// mean, biasing every phase duration upward in proportion to Noise).
func (s *Sim) Perturb(d float64) float64 {
	if s.Cluster.Noise == 0 || d == 0 {
		return d
	}
	k := 3 * s.Cluster.Noise
	if k > 0.99 {
		k = 0.99
	}
	f := 1 + s.rng.NormFloat64()*s.Cluster.Noise
	if f < 1-k {
		f = 1 - k
	} else if f > 1+k {
		f = 1 + k
	}
	return d * f
}

// Compute charges the time for flops floating-point operations executed by
// every process in parallel and returns the elapsed seconds.
func (s *Sim) Compute(flopsPerProc float64) float64 {
	if flopsPerProc < 0 {
		panic(fmt.Sprintf("cluster: Compute(%v)", flopsPerProc))
	}
	if s.ComputeHook != nil {
		s.ComputeHook(flopsPerProc)
	}
	d := s.Perturb(flopsPerProc / s.Cluster.FlopRate)
	s.Advance(d)
	return d
}

// NetworkShuffle charges the time to move totalBytes across the fabric
// between srcNodes senders and dstNodes receivers (used by two-phase
// collective buffering). The bottleneck is the smaller side's aggregate
// NIC bandwidth, plus one latency per message.
func (s *Sim) NetworkShuffle(totalBytes int64, srcNodes, dstNodes, messages int) float64 {
	if totalBytes < 0 || srcNodes <= 0 || dstNodes <= 0 || messages < 0 {
		panic(fmt.Sprintf("cluster: NetworkShuffle(%d, %d, %d, %d)", totalBytes, srcNodes, dstNodes, messages))
	}
	side := srcNodes
	if dstNodes < side {
		side = dstNodes
	}
	if side > s.Cluster.Nodes {
		side = s.Cluster.Nodes
	}
	bw := float64(side) * s.Cluster.NICBandwidth
	if dr := s.Cluster.Drift; dr != nil {
		bw *= dr.NICFactor(s.Time())
	}
	d := float64(totalBytes)/bw + float64(messages)*s.Cluster.NICLatency
	d = s.Perturb(d)
	s.Advance(d)
	return d
}

// Barrier charges a log-depth synchronization across n processes and
// returns the elapsed seconds (panics on a non-positive process count,
// which would indicate a broken cost model).
func (s *Sim) Barrier(n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: Barrier(%d)", n))
	}
	depth := math.Ceil(math.Log2(float64(n) + 1))
	d := depth * s.Cluster.NICLatency * 4
	s.Advance(d)
	return d
}

// AppBarrier charges an application-level barrier (MPI_Init/Finalize or an
// explicit MPI_Barrier in the application). It costs the same as Barrier but
// is observable through BarrierHook so trace recording captures it.
// Like Barrier it panics on a non-positive process count, before the
// hook fires, so recorders never capture an invalid barrier event.
func (s *Sim) AppBarrier(n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: AppBarrier(%d)", n))
	}
	if s.BarrierHook != nil {
		s.BarrierHook(n)
	}
	return s.Barrier(n)
}

// Rand exposes the simulation RNG for layers that need stochastic
// decisions tied to the run seed.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Reset rewinds the simulation to a fresh run under the given seed: clock
// and epoch to zero, RNG reseeded, report counters zeroed, hooks cleared.
// Used by stack pooling to reuse one Sim across evaluations without
// reallocating.
func (s *Sim) Reset(seed int64) {
	s.now = 0
	s.epoch = 0
	s.rng.Seed(seed)
	s.Report.Reset()
	s.ComputeHook = nil
	s.BarrierHook = nil
}
