// Constant folding: the ROADMAP pass that pre-evaluates kernel-build-time
// constants so every one of the thousands of evaluations in a tuning run
// interprets a cheaper program. The pass is semantics-preserving by
// construction: arithmetic is folded with the interpreter's own binaryOp /
// Value machinery, and variable uses are only substituted when the
// analysis layer's reaching definitions prove every definition reaching
// the use assigns the same compile-time constant.
package cinterp

import (
	"strconv"
	"strings"

	"tunio/internal/analysis"
	"tunio/internal/csrc"
)

// FoldReport summarizes what Fold changed.
type FoldReport struct {
	// FoldedExprs counts expression nodes replaced by literals (both
	// pre-evaluated arithmetic and proven-constant variable uses).
	FoldedExprs int
	// ConstDefs counts definitions proven to assign a compile-time
	// constant in the final pass.
	ConstDefs int
	// Passes is the number of propagation rounds run before fixpoint.
	Passes int
}

// Fold rewrites prog in place, pre-evaluating loop bounds, buffer sizes,
// and every other expression whose value is fixed at kernel-build time.
// Uses of a variable are replaced by a literal only when reaching
// definitions prove all definitions reaching that use are the same
// constant; macro arithmetic (the lexer expands #define bodies in place)
// and sizeof are folded unconditionally. Fold must run before the program
// is handed to concurrent Run calls: the interpreter shares the AST across
// ranks and evaluations and never mutates it, so folding once at
// kernel-build time is safe, folding during execution is not.
func Fold(prog *csrc.File) FoldReport {
	var rep FoldReport
	if prog == nil {
		return rep
	}
	// Global initializers: literal arithmetic only (no flow analysis at
	// file scope).
	for _, g := range prog.Globals {
		rep.FoldedExprs += foldStmtExprs(g, nil)
	}
	for _, fn := range prog.Funcs {
		foldFunc(prog, fn, &rep)
	}
	return rep
}

// foldFunc runs substitute-and-fold rounds over one function until no
// expression changes.
func foldFunc(prog *csrc.File, fn *csrc.FuncDecl, rep *FoldReport) {
	cfg := analysis.BuildCFG(fn)
	rd := analysis.NewReachingDefs(cfg)
	banned := bannedVars(prog, fn)

	// The reaching-definition sets stay valid across rounds: folding
	// replaces uses with literals but never adds, removes, or moves a
	// definition, so only the constancy of each definition's RHS evolves.
	nconsts := 0
	defer func() { rep.ConstDefs += nconsts }()
	for {
		rep.Passes++
		consts := constDefs(cfg, banned)
		nconsts = len(consts)
		changed := 0
		sub := &substituter{rd: rd, consts: consts, banned: banned}
		for _, b := range cfg.Blocks {
			for _, s := range b.Stmts {
				changed += foldStmtExprs(s, sub)
			}
		}
		rep.FoldedExprs += changed
		if changed == 0 {
			return
		}
	}
}

type defKey struct {
	stmtID int
	name   string
}

// constDefs maps every strong, non-banned definition whose RHS is a
// compile-time constant to its value.
func constDefs(cfg *analysis.CFG, banned map[string]bool) map[defKey]Value {
	consts := map[defKey]Value{}
	for _, b := range cfg.Blocks {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *csrc.DeclStmt:
				if banned[st.Name] || st.ArrayLen != nil || st.InitList != nil || st.Init == nil {
					continue
				}
				if v, ok := constEval(st.Init); ok {
					consts[defKey{st.ID, st.Name}] = v
				}
			case *csrc.AssignStmt:
				id, plain := st.LHS.(*csrc.Ident)
				if !plain || st.Op != "=" || banned[id.Name] {
					continue
				}
				if v, ok := constEval(st.RHS); ok {
					consts[defKey{st.Base().ID, id.Name}] = v
				}
			}
		}
	}
	return consts
}

// bannedVars collects the names substitution must not touch in fn: global
// variables (another function may redefine them between this function's
// statements via a call), names declared more than once in the function
// (the flow analyses merge same-named locals of sibling scopes), and
// names whose address is taken (writes through the alias are invisible to
// reaching definitions).
func bannedVars(prog *csrc.File, fn *csrc.FuncDecl) map[string]bool {
	banned := map[string]bool{}
	for _, g := range prog.Globals {
		banned[g.Name] = true
	}
	decls := map[string]int{}
	for _, p := range fn.Params {
		if p.Name != "" {
			decls[p.Name]++
		}
	}
	var walk func(s csrc.Stmt)
	walkBlock := func(b *csrc.Block) {
		if b == nil {
			return
		}
		for _, s := range b.Stmts {
			walk(s)
		}
	}
	noteAddrTaken := func(e csrc.Expr) {
		csrc.WalkExpr(e, func(x csrc.Expr) bool {
			if u, ok := x.(*csrc.UnaryExpr); ok && u.Op == "&" {
				if id, ok := u.X.(*csrc.Ident); ok {
					banned[id.Name] = true
				}
			}
			return true
		})
	}
	walk = func(s csrc.Stmt) {
		if s == nil {
			return
		}
		for _, e := range stmtExprs(s) {
			noteAddrTaken(e)
		}
		switch st := s.(type) {
		case *csrc.DeclStmt:
			decls[st.Name]++
		case *csrc.Block:
			walkBlock(st)
		case *csrc.IfStmt:
			walkBlock(st.Then)
			walkBlock(st.Else)
		case *csrc.ForStmt:
			walk(st.Init)
			walk(st.Post)
			walkBlock(st.Body)
		case *csrc.WhileStmt:
			walkBlock(st.Body)
		}
	}
	walkBlock(fn.Body)
	for name, n := range decls {
		if n > 1 {
			banned[name] = true
		}
	}
	return banned
}

// stmtExprs returns a statement's own expression operands (headers:
// condition only, matching the CFG decomposition).
func stmtExprs(s csrc.Stmt) []csrc.Expr {
	switch st := s.(type) {
	case *csrc.DeclStmt:
		out := []csrc.Expr{st.Init, st.ArrayLen}
		for _, e := range st.InitList {
			out = append(out, e)
		}
		return out
	case *csrc.AssignStmt:
		return []csrc.Expr{st.LHS, st.RHS}
	case *csrc.ExprStmt:
		return []csrc.Expr{st.X}
	case *csrc.IfStmt:
		return []csrc.Expr{st.Cond}
	case *csrc.ForStmt:
		return []csrc.Expr{st.Cond}
	case *csrc.WhileStmt:
		return []csrc.Expr{st.Cond}
	case *csrc.ReturnStmt:
		return []csrc.Expr{st.X}
	}
	return nil
}

// substituter replaces variable uses proven constant at one statement.
// nil means "literal arithmetic only" (no flow facts available).
type substituter struct {
	rd     *analysis.ReachingDefs
	consts map[defKey]Value
	banned map[string]bool
	stmt   csrc.Stmt
}

// valueAt returns the constant value of name at the current statement, if
// every reaching definition assigns that same constant.
func (s *substituter) valueAt(name string) (Value, bool) {
	if s == nil || s.banned[name] {
		return Value{}, false
	}
	defs := s.rd.Reaching(s.stmt, name)
	if len(defs) == 0 {
		// No local definition reaches: the value is a parameter, a global,
		// or undefined — unknown at build time either way.
		return Value{}, false
	}
	first, ok := s.consts[defKey{defs[0].Base().ID, name}]
	if !ok {
		return Value{}, false
	}
	for _, d := range defs[1:] {
		v, ok := s.consts[defKey{d.Base().ID, name}]
		if !ok || !sameValue(first, v) {
			return Value{}, false
		}
	}
	return first, true
}

func sameValue(a, b Value) bool {
	return a.Kind == b.Kind && a.I == b.I && a.F == b.F
}

// foldStmtExprs rewrites one statement's expression operands in place and
// returns the number of nodes replaced by literals.
func foldStmtExprs(s csrc.Stmt, sub *substituter) int {
	if sub != nil {
		sub.stmt = s
	}
	changed := 0
	fold := func(e csrc.Expr) csrc.Expr {
		out, n := foldExpr(e, sub)
		changed += n
		return out
	}
	switch st := s.(type) {
	case *csrc.DeclStmt:
		st.Init = fold(st.Init)
		st.ArrayLen = fold(st.ArrayLen)
		for i, e := range st.InitList {
			st.InitList[i] = fold(e)
		}
	case *csrc.AssignStmt:
		st.LHS = foldLvalue(st.LHS, fold)
		st.RHS = fold(st.RHS)
	case *csrc.ExprStmt:
		st.X = fold(st.X)
	case *csrc.IfStmt:
		st.Cond = fold(st.Cond)
	case *csrc.ForStmt:
		st.Cond = fold(st.Cond)
	case *csrc.WhileStmt:
		st.Cond = fold(st.Cond)
	case *csrc.ReturnStmt:
		st.X = fold(st.X)
	}
	return changed
}

// foldLvalue folds inside an assignable location without touching the
// location itself: subscripts fold, the root variable must stay a name.
func foldLvalue(e csrc.Expr, fold func(csrc.Expr) csrc.Expr) csrc.Expr {
	switch x := e.(type) {
	case *csrc.IndexExpr:
		x.X = foldLvalue(x.X, fold)
		x.Index = fold(x.Index)
	case *csrc.UnaryExpr:
		if x.Op == "*" {
			x.X = foldLvalue(x.X, fold)
		}
	}
	return e
}

// foldExpr rewrites an expression tree bottom-up: children first, then the
// node itself if it now evaluates to a constant. Returns the (possibly
// replaced) node and the number of nodes replaced by literals.
func foldExpr(e csrc.Expr, sub *substituter) (csrc.Expr, int) {
	if e == nil {
		return nil, 0
	}
	changed := 0
	recur := func(c csrc.Expr) csrc.Expr {
		out, n := foldExpr(c, sub)
		changed += n
		return out
	}
	switch x := e.(type) {
	case *csrc.Ident:
		if v, ok := sub.valueAt(x.Name); ok {
			return litExpr(v), changed + 1
		}
		return e, changed
	case *csrc.BinaryExpr:
		x.X = recur(x.X)
		x.Y = recur(x.Y)
	case *csrc.UnaryExpr:
		if x.Op == "&" || x.Op == "*" {
			// addresses and dereferences are runtime objects, and folding
			// below & would detach the operand from its variable
			return e, changed
		}
		x.X = recur(x.X)
	case *csrc.CallExpr:
		for i, a := range x.Args {
			x.Args[i] = recur(a)
		}
		return e, changed // calls never fold
	case *csrc.IndexExpr:
		// keep the base (an array object, never constant); fold subscripts
		x.Index = recur(x.Index)
		return e, changed
	case *csrc.CastExpr:
		x.X = recur(x.X)
	default:
		return e, changed // literals, sizeof handled below via constEval
	}
	if isLiteral(e) {
		return e, changed
	}
	if v, ok := constEval(e); ok {
		return litExpr(v), changed + 1
	}
	return e, changed
}

// isLiteral reports whether rewriting e to a literal would be a no-op.
func isLiteral(e csrc.Expr) bool {
	switch e.(type) {
	case *csrc.NumberLit, *csrc.StringLit, *csrc.CharLit:
		return true
	}
	return false
}

// constEval evaluates an expression that depends on no runtime state,
// mirroring the interpreter's eval/binaryOp exactly so folding can never
// change a program's result. The bool reports whether e is such an
// expression.
func constEval(e csrc.Expr) (Value, bool) {
	switch x := e.(type) {
	case *csrc.NumberLit:
		if x.IsFloat {
			return FloatVal(x.Float), true
		}
		return IntVal(x.Int), true
	case *csrc.CharLit:
		return IntVal(int64(x.Value)), true
	case *csrc.SizeofExpr:
		return IntVal(typeSize(x.Type)), true
	case *csrc.CastExpr:
		if len(x.Type) > 0 && x.Type[len(x.Type)-1] == '*' {
			return Value{}, false // pointer casts stay runtime values
		}
		v, ok := constEval(x.X)
		if !ok {
			return Value{}, false
		}
		if isFloatType(x.Type) {
			return FloatVal(v.AsFloat()), true
		}
		return IntVal(v.AsInt()), true
	case *csrc.UnaryExpr:
		v, ok := constEval(x.X)
		if !ok {
			return Value{}, false
		}
		switch x.Op {
		case "-":
			if v.Kind == KFloat {
				return FloatVal(-v.F), true
			}
			return IntVal(-v.AsInt()), true
		case "!":
			if v.Truthy() {
				return IntVal(0), true
			}
			return IntVal(1), true
		case "~":
			return IntVal(^v.AsInt()), true
		}
		return Value{}, false
	case *csrc.BinaryExpr:
		if x.Op == "&&" || x.Op == "||" {
			l, ok := constEval(x.X)
			if !ok {
				return Value{}, false
			}
			// short-circuit exactly as the interpreter does: a decided
			// left side folds without looking at the right (which the
			// interpreter would skip too)
			if x.Op == "&&" && !l.Truthy() {
				return IntVal(0), true
			}
			if x.Op == "||" && l.Truthy() {
				return IntVal(1), true
			}
			r, ok := constEval(x.Y)
			if !ok {
				return Value{}, false
			}
			if r.Truthy() {
				return IntVal(1), true
			}
			return IntVal(0), true
		}
		l, ok := constEval(x.X)
		if !ok {
			return Value{}, false
		}
		r, ok := constEval(x.Y)
		if !ok {
			return Value{}, false
		}
		v, err := binaryOp(x.Op, l, r)
		if err != nil {
			return Value{}, false // e.g. division by zero: fail at runtime, not fold time
		}
		return v, true
	}
	return Value{}, false
}

// litExpr renders a constant Value as a literal AST node.
func litExpr(v Value) csrc.Expr {
	if v.Kind == KFloat {
		text := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(text, ".eE") {
			text += ".0" // keep the printed form a float literal
		}
		return &csrc.NumberLit{Text: text, IsFloat: true, Float: v.F}
	}
	return &csrc.NumberLit{Text: strconv.FormatInt(v.I, 10), Int: v.I}
}
