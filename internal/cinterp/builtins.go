package cinterp

import (
	"fmt"
	"math"

	"tunio/internal/csrc"
	"tunio/internal/discovery"
	"tunio/internal/hdf5"
)

// builtin dispatches library calls (HDF5, MPI, libc, and the discovery
// transforms' helpers).
func (in *interp) builtin(x *csrc.CallExpr, sc *scope) (Value, error) {
	evalArgs := func() ([]Value, error) {
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return args, nil
	}

	switch x.Fun {
	// ---- MPI ----
	case "MPI_Init", "MPI_Finalize", "MPI_Barrier":
		return in.coord.collective(&request{rank: in.rank, op: opOf(x.Fun), key: x.Fun})

	case "MPI_Comm_rank", "MPI_Comm_size":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		if len(args) != 2 || args[1].Kind != KRef {
			return Value{}, fmt.Errorf("cinterp: %s needs (comm, &var)", x.Fun)
		}
		out := int64(in.rank)
		if x.Fun == "MPI_Comm_size" {
			out = int64(in.nprocs)
		}
		*args[1].Ref = IntVal(out)
		return IntVal(0), nil

	// ---- HDF5 file ----
	case "H5Fcreate", "H5Fopen":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		if len(args) < 1 || args[0].Kind != KString {
			return Value{}, fmt.Errorf("cinterp: %s needs a path string", x.Fun)
		}
		name := args[0].S
		return in.coord.collective(&request{
			rank: in.rank, op: x.Fun, key: x.Fun + ":" + name, name: name,
		})

	case "H5Fclose":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		id := args[0].AsInt()
		return in.coord.collective(&request{
			rank: in.rank, op: "H5Fclose", key: fmt.Sprintf("H5Fclose:%d", id), id: id,
		})

	// ---- dataspaces (rank-local) ----
	case "H5Screate_simple":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		if len(args) < 2 {
			return Value{}, fmt.Errorf("cinterp: H5Screate_simple needs (ndims, dims, maxdims)")
		}
		dims, err := intSlice(args[1], int(args[0].AsInt()))
		if err != nil {
			return Value{}, err
		}
		id := in.allocID()
		in.spaces[id] = &spaceObj{dims: dims}
		return IntVal(id), nil

	case "H5Sselect_hyperslab":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		if len(args) < 5 {
			return Value{}, fmt.Errorf("cinterp: H5Sselect_hyperslab needs 5+ args")
		}
		sp := in.spaces[args[0].AsInt()]
		if sp == nil {
			return Value{}, fmt.Errorf("cinterp: H5Sselect_hyperslab on invalid space")
		}
		start, err := intSlice(args[2], len(sp.dims))
		if err != nil {
			return Value{}, err
		}
		if args[3].Kind == KArray {
			return Value{}, fmt.Errorf("cinterp: strided hyperslab selections are not supported")
		}
		count, err := intSlice(args[4], len(sp.dims))
		if err != nil {
			return Value{}, err
		}
		sp.start, sp.count = start, count
		return IntVal(0), nil

	case "H5Sclose":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		delete(in.spaces, args[0].AsInt())
		return IntVal(0), nil

	// ---- property lists (rank-local; only chunking is modeled) ----
	case "H5Pcreate":
		if _, err := evalArgs(); err != nil {
			return Value{}, err
		}
		id := in.allocID()
		in.plists[id] = &plistObj{}
		return IntVal(id), nil

	case "H5Pset_chunk":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		pl := in.plists[args[0].AsInt()]
		if pl == nil {
			return Value{}, fmt.Errorf("cinterp: H5Pset_chunk on invalid plist")
		}
		chunk, err := intSlice(args[2], int(args[1].AsInt()))
		if err != nil {
			return Value{}, err
		}
		pl.chunk = chunk
		return IntVal(0), nil

	case "H5Pclose":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		delete(in.plists, args[0].AsInt())
		return IntVal(0), nil

	// ---- datasets ----
	case "H5Dcreate":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		if len(args) < 4 {
			return Value{}, fmt.Errorf("cinterp: H5Dcreate needs (file, name, type, space, ...)")
		}
		sp := in.spaces[args[3].AsInt()]
		if sp == nil {
			return Value{}, fmt.Errorf("cinterp: H5Dcreate with invalid dataspace")
		}
		var chunk []int64
		if len(args) >= 6 {
			if pl := in.plists[args[5].AsInt()]; pl != nil && pl.chunk != nil {
				chunk = pl.chunk
			}
		}
		fileID := args[0].AsInt()
		name := args[1].S
		return in.coord.collective(&request{
			rank: in.rank, op: "H5Dcreate",
			key: fmt.Sprintf("H5Dcreate:%d:%s", fileID, name),
			id:  fileID, name: name, dims: sp.dims, chunk: chunk,
		})

	case "H5Dopen":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		fileID := args[0].AsInt()
		name := args[1].S
		return in.coord.collective(&request{
			rank: in.rank, op: "H5Dopen",
			key: fmt.Sprintf("H5Dopen:%d:%s", fileID, name),
			id:  fileID, name: name,
		})

	case "H5Dwrite", "H5Dread":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		if len(args) < 4 {
			return Value{}, fmt.Errorf("cinterp: %s needs (ds, memtype, memspace, filespace, ...)", x.Fun)
		}
		dsID := args[0].AsInt()
		slab := &hdf5.Slab{Rank: in.rank}
		if spID := args[3].AsInt(); spID != 0 {
			sp := in.spaces[spID]
			if sp == nil {
				return Value{}, fmt.Errorf("cinterp: %s with invalid file space", x.Fun)
			}
			if sp.count != nil {
				slab.Start = append([]int64(nil), sp.start...)
				slab.Count = append([]int64(nil), sp.count...)
			} else {
				slab.Start = make([]int64, len(sp.dims))
				slab.Count = append([]int64(nil), sp.dims...)
			}
		} else {
			return Value{}, fmt.Errorf("cinterp: %s with H5S_ALL file space requires a selection", x.Fun)
		}
		return in.coord.collective(&request{
			rank: in.rank, op: x.Fun,
			key: fmt.Sprintf("%s:%d", x.Fun, dsID),
			id:  dsID, slab: slab,
		})

	case "H5Dclose":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		id := args[0].AsInt()
		return in.coord.collective(&request{
			rank: in.rank, op: "H5Dclose", key: fmt.Sprintf("H5Dclose:%d", id), id: id,
		})

	// ---- groups & attributes (metadata objects) ----
	case "H5Gcreate":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		if len(args) < 2 || args[1].Kind != KString {
			return Value{}, fmt.Errorf("cinterp: H5Gcreate needs (loc, name, ...)")
		}
		locID := args[0].AsInt()
		return in.coord.collective(&request{
			rank: in.rank, op: "H5Gcreate",
			key: fmt.Sprintf("H5Gcreate:%d:%s", locID, args[1].S),
			id:  locID, name: args[1].S,
		})

	case "H5Gclose":
		_, err := evalArgs()
		return IntVal(0), err

	case "H5Acreate", "H5Awrite":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		if x.Fun == "H5Awrite" {
			// the attribute's metadata cost was charged at creation
			return IntVal(0), nil
		}
		if len(args) < 2 || args[1].Kind != KString {
			return Value{}, fmt.Errorf("cinterp: H5Acreate needs (loc, name, ...)")
		}
		locID := args[0].AsInt()
		return in.coord.collective(&request{
			rank: in.rank, op: "H5Acreate",
			key: fmt.Sprintf("H5Acreate:%d:%s", locID, args[1].S),
			id:  locID, name: args[1].S,
		})

	case "H5Aclose":
		_, err := evalArgs()
		return IntVal(0), err

	// ---- compute / libc ----
	case "compute_flops":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		fl := args[0].AsFloat()
		if fl < 0 {
			return Value{}, fmt.Errorf("cinterp: compute_flops(%v)", fl)
		}
		return in.coord.collective(&request{
			rank: in.rank, op: "compute", key: "compute", flops: fl,
		})

	case "malloc", "calloc":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		size := args[0].AsInt()
		if x.Fun == "calloc" && len(args) > 1 {
			size *= args[1].AsInt()
		}
		return Value{Kind: KBuf, Size: size}, nil

	case "free":
		_, err := evalArgs()
		return IntVal(0), err

	case "printf":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		if in.rank == 0 && len(args) > 0 && args[0].Kind == KString {
			in.output = append(in.output, args[0].S)
		}
		return IntVal(0), nil

	case "sprintf", "snprintf":
		// the destination is written, not read: resolve it as an lvalue
		fmtIdx := 1
		if x.Fun == "snprintf" {
			fmtIdx = 2
		}
		if len(x.Args) <= fmtIdx {
			return Value{}, fmt.Errorf("cinterp: %s needs (dst, ..., format, args)", x.Fun)
		}
		dst, err := in.lvalue(x.Args[0], sc)
		if err != nil {
			return Value{}, err
		}
		rest := make([]Value, 0, len(x.Args)-1)
		for _, a := range x.Args[1:] {
			v, err := in.eval(a, sc)
			if err != nil {
				return Value{}, err
			}
			rest = append(rest, v)
		}
		format := rest[fmtIdx-1]
		if format.Kind != KString {
			return Value{}, fmt.Errorf("cinterp: %s format must be a string", x.Fun)
		}
		s, err := formatC(format.S, rest[fmtIdx:])
		if err != nil {
			return Value{}, fmt.Errorf("cinterp: %s: %w", x.Fun, err)
		}
		full := int64(len(s)) // C returns the untruncated length
		if x.Fun == "snprintf" {
			n := rest[0].AsInt()
			if n <= 0 {
				return IntVal(full), nil // nothing written
			}
			if full >= n {
				s = s[:n-1]
			}
		}
		*dst = StrVal(s)
		return IntVal(full), nil

	case "strncpy":
		if len(x.Args) < 3 {
			return Value{}, fmt.Errorf("cinterp: strncpy needs (dst, src, n)")
		}
		dst, err := in.lvalue(x.Args[0], sc)
		if err != nil {
			return Value{}, err
		}
		src, err := in.eval(x.Args[1], sc)
		if err != nil {
			return Value{}, err
		}
		nv, err := in.eval(x.Args[2], sc)
		if err != nil {
			return Value{}, err
		}
		if src.Kind != KString {
			return Value{}, fmt.Errorf("cinterp: strncpy source must be a string")
		}
		s := src.S
		if n := nv.AsInt(); n < 0 {
			return Value{}, fmt.Errorf("cinterp: strncpy negative size")
		} else if int64(len(s)) > n {
			s = s[:n] // truncating copy: first n bytes, no terminator in C
		}
		*dst = StrVal(s)
		return *dst, nil

	case "strcpy", "strcat":
		if len(x.Args) < 2 {
			return Value{}, fmt.Errorf("cinterp: %s needs (dst, src)", x.Fun)
		}
		dst, err := in.lvalue(x.Args[0], sc)
		if err != nil {
			return Value{}, err
		}
		src, err := in.eval(x.Args[1], sc)
		if err != nil {
			return Value{}, err
		}
		if src.Kind != KString {
			return Value{}, fmt.Errorf("cinterp: %s source must be a string", x.Fun)
		}
		s := src.S
		if x.Fun == "strcat" && dst.Kind == KString {
			s = dst.S + s
		}
		*dst = StrVal(s)
		return *dst, nil

	case "dsname":
		// helper for SPMD sources that create datasets in loops: derive a
		// deterministic dataset name from an integer id
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		return StrVal(fmt.Sprintf("ds%05d", args[0].AsInt())), nil

	case "sqrt":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		return FloatVal(math.Sqrt(args[0].AsFloat())), nil

	case "exit":
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		return Value{}, returnSignal{val: args[0]}

	case discovery.LoopReduceBuiltin:
		args, err := evalArgs()
		if err != nil {
			return Value{}, err
		}
		if len(args) != 2 {
			return Value{}, fmt.Errorf("cinterp: %s needs (n, fraction)", discovery.LoopReduceBuiltin)
		}
		n := args[0].AsInt()
		frac := args[1].AsFloat()
		reduced := int64(math.Floor(float64(n) * frac))
		if reduced < 1 {
			reduced = 1
		}
		if reduced > n {
			reduced = n
		}
		in.loopOrig += n
		in.loopReduced += reduced
		return IntVal(reduced), nil

	default:
		// unknown H5Pset_* tuning calls are accepted and ignored: the
		// stack configuration is injected by the tuner, not the source
		if len(x.Fun) > 7 && x.Fun[:7] == "H5Pset_" {
			_, err := evalArgs()
			return IntVal(0), err
		}
		return Value{}, fmt.Errorf("cinterp: unknown function %q", x.Fun)
	}
}

func opOf(fun string) string { return fun }

// formatC renders a C format string over interpreter values. Supported:
// %s, %d/%i/%u/%x (with optional l/z length modifiers), %f/%g, and %%,
// each with optional 0/- flags, width, and precision (%05d zero-pads a
// rank stamp exactly as libc does). `*` widths are rejected.
func formatC(format string, args []Value) (string, error) {
	var b []byte
	ai := 0
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			b = append(b, ch)
			continue
		}
		i++
		if i >= len(format) {
			return "", fmt.Errorf("format ends with %%")
		}
		if format[i] == '%' {
			b = append(b, '%')
			continue
		}
		spec := []byte{'%'}
		for i < len(format) && (format[i] == '0' || format[i] == '-' ||
			(format[i] >= '1' && format[i] <= '9')) {
			spec = append(spec, format[i])
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				spec = append(spec, format[i])
				i++
			}
		}
		if i < len(format) && format[i] == '.' {
			spec = append(spec, '.')
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				spec = append(spec, format[i])
				i++
			}
		}
		if i < len(format) && format[i] == '*' {
			return "", fmt.Errorf("unsupported * width")
		}
		for i < len(format) && (format[i] == 'l' || format[i] == 'z') {
			i++
		}
		if i >= len(format) {
			return "", fmt.Errorf("format ends inside a verb")
		}
		if ai >= len(args) {
			return "", fmt.Errorf("missing argument for %%%c", format[i])
		}
		switch format[i] {
		case 's':
			if args[ai].Kind != KString {
				return "", fmt.Errorf("%%s argument is not a string")
			}
			b = append(b, fmt.Sprintf(string(append(spec, 's')), args[ai].S)...)
		case 'd', 'i', 'u':
			b = append(b, fmt.Sprintf(string(append(spec, 'd')), args[ai].AsInt())...)
		case 'x':
			b = append(b, fmt.Sprintf(string(append(spec, 'x')), args[ai].AsInt())...)
		case 'f':
			b = append(b, fmt.Sprintf(string(append(spec, 'f')), args[ai].AsFloat())...)
		case 'g':
			b = append(b, fmt.Sprintf(string(append(spec, 'g')), args[ai].AsFloat())...)
		default:
			return "", fmt.Errorf("unsupported format verb %%%c", format[i])
		}
		ai++
	}
	return string(b), nil
}

// intSlice extracts n ints from an array value.
func intSlice(v Value, n int) ([]int64, error) {
	if v.Kind != KArray {
		return nil, fmt.Errorf("cinterp: expected array argument, got %s", v)
	}
	if n <= 0 || n > len(v.Arr) {
		n = len(v.Arr)
	}
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = v.Arr[i].AsInt()
	}
	return out, nil
}
