// Package cinterp executes the C-subset programs of TunIO's workloads
// against the simulated I/O stack: an SPMD tree-walking interpreter where
// every simulated MPI rank runs the program in its own goroutine and
// synchronizes with a coordinator at I/O and MPI calls. Collective HDF5
// operations gather all live ranks' arguments (e.g. hyperslab selections)
// into one phase against the hdf5 simulation, exactly as the tuner's
// Configuration Evaluation step runs a compiled I/O kernel job.
package cinterp

import (
	"fmt"
	"strings"
)

// Kind tags a runtime value.
type Kind int

// Value kinds.
const (
	KNull Kind = iota
	KInt
	KFloat
	KString
	KArray
	KBuf // opaque allocation (malloc result); size only
	KRef // reference to a variable slot (& operator)
)

// Value is one runtime value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	Arr  []Value // shared by reference
	Size int64   // KBuf allocation size
	Ref  *Value  // KRef target
}

// IntVal builds an integer value.
func IntVal(i int64) Value { return Value{Kind: KInt, I: i} }

// FloatVal builds a float value.
func FloatVal(f float64) Value { return Value{Kind: KFloat, F: f} }

// StrVal builds a string value.
func StrVal(s string) Value { return Value{Kind: KString, S: s} }

// AsInt coerces to int64.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KInt:
		return v.I
	case KFloat:
		return int64(v.F)
	case KBuf:
		return v.Size
	case KRef:
		if v.Ref != nil {
			return v.Ref.AsInt()
		}
	}
	return 0
}

// AsFloat coerces to float64. Buffers coerce to their size so C-style
// NULL checks (`ptr != 0`) behave.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KInt:
		return float64(v.I)
	case KFloat:
		return v.F
	case KBuf:
		return float64(v.Size)
	case KRef:
		if v.Ref != nil {
			return v.Ref.AsFloat()
		}
	}
	return 0
}

// Truthy reports C truthiness.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KInt:
		return v.I != 0
	case KFloat:
		return v.F != 0
	case KString:
		return v.S != ""
	case KArray:
		return len(v.Arr) > 0
	case KBuf:
		return true
	case KRef:
		return v.Ref != nil
	}
	return false
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KFloat:
		return fmt.Sprintf("%g", v.F)
	case KString:
		return fmt.Sprintf("%q", v.S)
	case KArray:
		var parts []string
		for _, e := range v.Arr {
			parts = append(parts, e.String())
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case KBuf:
		return fmt.Sprintf("buf(%d)", v.Size)
	case KRef:
		return "&" + v.Ref.String()
	}
	return "null"
}

// typeSize returns sizeof for the supported C types.
func typeSize(typ string) int64 {
	base := strings.TrimSpace(typ)
	if strings.HasSuffix(base, "*") {
		return 8
	}
	switch base {
	case "char":
		return 1
	case "int", "float", "unsigned", "unsigned int", "int32_t":
		return 4
	case "double", "long", "long long", "size_t", "hsize_t", "hid_t",
		"hssize_t", "int64_t", "uint64_t", "unsigned long":
		return 8
	case "herr_t":
		return 4
	default:
		return 8
	}
}

// isFloatType reports whether a declared type holds floats.
func isFloatType(typ string) bool {
	return typ == "double" || typ == "float"
}
