package cinterp

import (
	"fmt"
	"sort"

	"tunio/internal/hdf5"
)

// request is one rank's arrival at a synchronization point.
type request struct {
	rank  int
	op    string
	key   string // grouping key: op + target handle/name
	name  string
	dims  []int64
	chunk []int64
	slab  *hdf5.Slab
	flops float64
	id    int64
	reply chan result
}

type result struct {
	v   Value
	err error
}

// coordinator serializes all interactions with the simulated stack: rank
// goroutines block at collective calls; once every live rank has arrived
// somewhere, the coordinator executes each arrival group as one phase.
type coordinator struct {
	lib     *hdf5.Library
	nprocs  int
	reqCh   chan *request
	doneCh  chan doneMsg
	stopped chan struct{}

	handles map[int64]interface{} // shared *hdf5.File / *hdf5.Dataset
	nextID  int64                 // even IDs for shared handles
	fail    error
}

type doneMsg struct {
	rank int
	err  error
}

func newCoordinator(lib *hdf5.Library, nprocs int) *coordinator {
	return &coordinator{
		lib:     lib,
		nprocs:  nprocs,
		reqCh:   make(chan *request, nprocs),
		doneCh:  make(chan doneMsg, nprocs),
		stopped: make(chan struct{}),
		handles: map[int64]interface{}{},
		nextID:  2,
	}
}

// collective is called from rank goroutines: block until the coordinator
// services the request.
func (c *coordinator) collective(req *request) (Value, error) {
	req.reply = make(chan result, 1)
	c.reqCh <- req
	res := <-req.reply
	return res.v, res.err
}

// done reports rank completion.
func (c *coordinator) done(rank int, err error) {
	c.doneCh <- doneMsg{rank: rank, err: err}
}

// fullyCollective ops require every live rank to arrive at the same call
// before proceeding (file-level collectives and barriers, matching
// parallel HDF5/MPI semantics); other ops execute with whichever ranks
// arrived (dataset I/O from a rank subset is a smaller phase).
var fullyCollective = map[string]bool{
	"H5Fcreate": true, "H5Fopen": true, "H5Fclose": true,
	"MPI_Init": true, "MPI_Finalize": true, "MPI_Barrier": true,
}

// run is the coordinator loop; it returns the first rank error.
func (c *coordinator) run() error {
	live := c.nprocs
	var pending []*request
	var firstErr error
	for live > 0 {
		select {
		case req := <-c.reqCh:
			pending = append(pending, req)
		case d := <-c.doneCh:
			live--
			if d.err != nil && firstErr == nil {
				firstErr = d.err
			}
		}
		if live > 0 && len(pending) >= live {
			var executed bool
			pending, executed = c.service(pending, live)
			if !executed && len(pending) >= live {
				// every rank is blocked in a fully-collective call that
				// will never complete: a genuine collective mismatch
				err := fmt.Errorf("cinterp: collective mismatch: ranks blocked in different collective calls")
				if c.fail == nil {
					c.fail = err
				}
				for _, req := range pending {
					req.reply <- result{err: err}
				}
				pending = nil
			}
		}
	}
	// ranks that died while others wait: fail any stragglers
	for _, req := range pending {
		req.reply <- result{err: fmt.Errorf("cinterp: collective with no peers (ranks exited)")}
	}
	close(c.stopped)
	return firstErr
}

// service executes ready groups and returns the retained (not yet ready)
// requests plus whether anything executed.
func (c *coordinator) service(reqs []*request, live int) (retained []*request, executed bool) {
	groups := map[string][]*request{}
	var keys []string
	for _, r := range reqs {
		if _, ok := groups[r.key]; !ok {
			keys = append(keys, r.key)
		}
		groups[r.key] = append(groups[r.key], r)
	}
	sort.Strings(keys)
	for _, k := range keys {
		group := groups[k]
		if fullyCollective[group[0].op] && len(group) < live {
			retained = append(retained, group...)
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i].rank < group[j].rank })
		v, err := c.execute(group)
		if c.fail != nil && err == nil {
			err = c.fail
		}
		if err != nil && c.fail == nil {
			c.fail = err
		}
		for _, r := range group {
			r.reply <- result{v: v, err: err}
		}
		executed = true
	}
	return retained, executed
}

// execute runs one group as a single operation/phase.
func (c *coordinator) execute(group []*request) (Value, error) {
	if c.fail != nil {
		return Value{}, c.fail
	}
	lead := group[0]
	switch lead.op {
	case "H5Fcreate":
		f, err := c.lib.CreateFile(lead.name)
		if err != nil {
			return Value{}, err
		}
		id := c.register(f)
		return IntVal(id), nil

	case "H5Fopen":
		f, err := c.lib.OpenFile(lead.name)
		if err != nil {
			return Value{}, err
		}
		id := c.register(f)
		return IntVal(id), nil

	case "H5Fclose":
		f, ok := c.handles[lead.id].(*hdf5.File)
		if !ok {
			return Value{}, fmt.Errorf("cinterp: H5Fclose on invalid handle %d", lead.id)
		}
		if err := f.Close(); err != nil {
			return Value{}, err
		}
		return IntVal(0), nil

	case "H5Dcreate":
		f, ok := c.handles[lead.id].(*hdf5.File)
		if !ok {
			return Value{}, fmt.Errorf("cinterp: H5Dcreate on invalid file handle %d", lead.id)
		}
		space, err := hdf5.NewSpace(lead.dims, 8)
		if err != nil {
			return Value{}, err
		}
		ds, err := f.CreateDataset(lead.name, space, lead.chunk)
		if err != nil {
			return Value{}, err
		}
		return IntVal(c.register(ds)), nil

	case "H5Dopen":
		f, ok := c.handles[lead.id].(*hdf5.File)
		if !ok {
			return Value{}, fmt.Errorf("cinterp: H5Dopen on invalid file handle %d", lead.id)
		}
		ds, err := f.OpenDataset(lead.name)
		if err != nil {
			return Value{}, err
		}
		return IntVal(c.register(ds)), nil

	case "H5Dwrite", "H5Dread":
		ds, ok := c.handles[lead.id].(*hdf5.Dataset)
		if !ok {
			return Value{}, fmt.Errorf("cinterp: %s on invalid dataset handle %d", lead.op, lead.id)
		}
		slabs := make([]hdf5.Slab, 0, len(group))
		for _, r := range group {
			if r.slab == nil {
				return Value{}, fmt.Errorf("cinterp: %s rank %d has no selection", r.op, r.rank)
			}
			slabs = append(slabs, *r.slab)
		}
		var err error
		if lead.op == "H5Dwrite" {
			_, err = ds.Write(slabs)
		} else {
			_, err = ds.Read(slabs)
		}
		if err != nil {
			return Value{}, err
		}
		return IntVal(0), nil

	case "H5Dclose":
		return IntVal(0), nil

	case "H5Gcreate":
		f, ok := c.handles[lead.id].(*hdf5.File)
		if !ok {
			return Value{}, fmt.Errorf("cinterp: H5Gcreate on invalid file handle %d", lead.id)
		}
		if err := f.CreateGroup(lead.name); err != nil {
			return Value{}, err
		}
		// a group id behaves as a location: alias it to the file handle so
		// H5Dcreate(group, ...) works
		return IntVal(c.register(f)), nil

	case "H5Acreate":
		switch obj := c.handles[lead.id].(type) {
		case *hdf5.File:
			if err := obj.WriteAttribute(lead.name, 0); err != nil {
				return Value{}, err
			}
		case *hdf5.Dataset:
			if err := obj.WriteAttribute(lead.name, 0); err != nil {
				return Value{}, err
			}
		default:
			return Value{}, fmt.Errorf("cinterp: H5Acreate on invalid handle %d", lead.id)
		}
		return IntVal(c.register(struct{}{})), nil

	case "MPI_Init", "MPI_Finalize":
		c.lib.Sim().AppBarrier(len(group))
		return IntVal(0), nil

	case "MPI_Barrier":
		c.lib.Sim().AppBarrier(len(group))
		return IntVal(0), nil

	case "compute":
		max := 0.0
		for _, r := range group {
			if r.flops > max {
				max = r.flops
			}
		}
		c.lib.Sim().Compute(max)
		return IntVal(0), nil

	default:
		return Value{}, fmt.Errorf("cinterp: unknown collective op %q", lead.op)
	}
}

func (c *coordinator) register(obj interface{}) int64 {
	id := c.nextID
	c.nextID += 2
	c.handles[id] = obj
	return id
}
