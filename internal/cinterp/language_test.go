package cinterp

import (
	"strings"
	"testing"
)

// runOutput executes a single-rank program and returns rank 0's printf
// strings (the language tests observe behavior through output).
func runOutput(t *testing.T, src string) []string {
	t.Helper()
	lib := newLib(t, 1, 1)
	res, err := Run(parseProg(t, src), lib)
	if err != nil {
		t.Fatal(err)
	}
	return res.Output
}

func TestLangWhileAndBreak(t *testing.T) {
	out := runOutput(t, `
int main() {
    int i = 0;
    while (1) {
        i = i + 1;
        if (i >= 5) {
            break;
        }
    }
    if (i == 5) {
        printf("five\n");
    }
    return 0;
}
`)
	if len(out) != 1 || !strings.Contains(out[0], "five") {
		t.Fatalf("output = %v", out)
	}
}

func TestLangContinue(t *testing.T) {
	out := runOutput(t, `
int main() {
    int evens = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 1) {
            continue;
        }
        evens = evens + 1;
    }
    if (evens == 5) {
        printf("ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("output = %v", out)
	}
}

func TestLangUserFunctions(t *testing.T) {
	out := runOutput(t, `
long fib(long n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    if (fib(10) == 55) {
        printf("fib ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("recursion failed: %v", out)
	}
}

func TestLangGlobals(t *testing.T) {
	out := runOutput(t, `
int counter = 40;
int bump(int by) {
    counter = counter + by;
    return counter;
}
int main() {
    bump(2);
    if (counter == 42) {
        printf("global ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("globals failed: %v", out)
	}
}

func TestLangArraysAndArithmetic(t *testing.T) {
	out := runOutput(t, `
int main() {
    double acc[4] = {1.5, 2.5, 3.0, 0.0};
    acc[3] = acc[0] + acc[1] * 2.0;
    int mask = (1 << 3) | 1;
    long big = 1000000 * 1000;
    if (acc[3] == 6.5 && mask == 9 && big == 1000000000) {
        printf("math ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("arithmetic failed: %v", out)
	}
}

func TestLangCastsAndSizeof(t *testing.T) {
	out := runOutput(t, `
int main() {
    double x = 7.9;
    int trunc = (int)x;
    if (trunc == 7 && sizeof(double) == 8 && sizeof(int) == 4 && sizeof(char) == 1) {
        printf("casts ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("casts failed: %v", out)
	}
}

func TestLangSqrtBuiltin(t *testing.T) {
	out := runOutput(t, `
int main() {
    double r = sqrt(144.0);
    if (r == 12.0) {
        printf("sqrt ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("sqrt failed: %v", out)
	}
}

func TestLangCharLiterals(t *testing.T) {
	out := runOutput(t, `
int main() {
    char c = 'A';
    if (c == 65) {
        printf("char ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("char failed: %v", out)
	}
}

func TestLangShortCircuit(t *testing.T) {
	// The right side of && must not evaluate when the left is false:
	// 1/zero would error otherwise.
	out := runOutput(t, `
int main() {
    int zero = 0;
    if (zero != 0 && 1 / zero > 0) {
        printf("bad\n");
    } else {
        printf("short ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 || !strings.Contains(out[0], "short ok") {
		t.Fatalf("short circuit failed: %v", out)
	}
}

func TestLangRunawayLoopCaught(t *testing.T) {
	lib := newLib(t, 1, 1)
	_, err := Run(parseProg(t, `
int main() {
    while (1) {
        int x = 1;
    }
    return 0;
}
`), lib)
	if err == nil || !strings.Contains(err.Error(), "operations") {
		t.Fatalf("runaway loop not caught: %v", err)
	}
}

func TestLangNestedLoops(t *testing.T) {
	out := runOutput(t, `
int main() {
    int total = 0;
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 3; j++) {
            total = total + i * j;
        }
    }
    if (total == 18) {
        printf("nested ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("nested loops failed: %v", out)
	}
}

func TestLangElseChains(t *testing.T) {
	out := runOutput(t, `
int classify(int v) {
    if (v < 0) {
        return -1;
    } else {
        if (v == 0) {
            return 0;
        } else {
            return 1;
        }
    }
}
int main() {
    if (classify(-5) == -1 && classify(0) == 0 && classify(9) == 1) {
        printf("chains ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("else chains failed: %v", out)
	}
}

func TestLangBuiltinErrorPaths(t *testing.T) {
	cases := []string{
		// bad H5Screate_simple args
		`int main() { hid_t s = H5Screate_simple(1, 5, NULL); return 0; }`,
		// hyperslab on bad space
		`int main() { hsize_t a[1] = {1}; H5Sselect_hyperslab(12345, H5S_SELECT_SET, a, NULL, a, NULL); return 0; }`,
		// chunk on bad plist
		`int main() { hsize_t c[1] = {1}; H5Pset_chunk(999, 1, c); return 0; }`,
		// dataset create with bad space
		`int main() { hid_t f = H5Fcreate("/scratch/e.h5", 0, 0, 0); hid_t d = H5Dcreate(f, "x", 0, 777, 0, 0, 0); return 0; }`,
		// comm_rank without pointer
		`int main() { MPI_Comm_rank(MPI_COMM_WORLD, 5); return 0; }`,
		// negative compute
		`int main() { compute_flops(-1.0); return 0; }`,
		// fclose of bad handle
		`int main() { H5Fclose(424242); return 0; }`,
		// group on bad handle
		`int main() { hid_t g = H5Gcreate(5, "x", 0, 0, 0); return 0; }`,
		// attribute on bad handle
		`int main() { hid_t a = H5Acreate(5, "x", 0, 0, 0, 0); return 0; }`,
		// loop_reduce arg count
		`int main() { int n = __loop_reduce(10); return 0; }`,
	}
	for i, src := range cases {
		lib := newLib(t, 1, 2)
		if _, err := Run(parseProg(t, src), lib); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestLangUnknownH5PsetIgnored(t *testing.T) {
	// Tuning-property calls in source are accepted and ignored: the stack
	// configuration is injected by the tuner, not the application.
	out := runOutput(t, `
int main() {
    H5Pset_alignment(0, 0, 1048576);
    H5Pset_sieve_buf_size(0, 65536);
    printf("ignored ok\n");
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("H5Pset_* not tolerated: %v", out)
	}
}

func TestLangBufferSemantics(t *testing.T) {
	// malloc'd buffers accept symbolic element writes and free.
	out := runOutput(t, `
int main() {
    double* buf = (double*)malloc(64 * sizeof(double));
    buf[0] = 1.5;
    buf[63] = 2.5;
    double* alias = buf;
    free(alias);
    printf("buf ok\n");
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("buffer semantics failed: %v", out)
	}
}

func TestLangCalloc(t *testing.T) {
	out := runOutput(t, `
int main() {
    long* v = (long*)calloc(8, sizeof(long));
    if (v != 0) {
        printf("calloc ok\n");
    }
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("calloc failed: %v", out)
	}
}

func TestLangExit(t *testing.T) {
	lib := newLib(t, 1, 1)
	if _, err := Run(parseProg(t, `int main() { exit(0); return 7; }`), lib); err != nil {
		t.Fatal(err)
	}
}

func TestLangSievePlistLifecycle(t *testing.T) {
	out := runOutput(t, `
int main() {
    hid_t p = H5Pcreate(H5P_DATASET_CREATE);
    hsize_t c[2] = {4, 4};
    H5Pset_chunk(p, 2, c);
    H5Pclose(p);
    hid_t s = H5Screate_simple(2, c, NULL);
    H5Sclose(s);
    printf("plist ok\n");
    return 0;
}
`)
	if len(out) != 1 {
		t.Fatalf("plist lifecycle failed: %v", out)
	}
}

func TestLangSprintfZeroPad(t *testing.T) {
	out := runOutput(t, `
int main() {
    int rank = 7;
    char fname[64];
    sprintf(fname, "out.%05d.h5", rank);
    printf(fname);
    return 0;
}
`)
	if len(out) != 1 || out[0] != "out.00007.h5" {
		t.Fatalf("zero-padded sprintf = %v, want out.00007.h5", out)
	}
}

func TestLangSprintfWidthPrecision(t *testing.T) {
	out := runOutput(t, `
int main() {
    char buf[64];
    sprintf(buf, "[%-4d|%8d|%.3d|%04x|%.2s]", 3, 1, 7, 255, "abcd");
    printf(buf);
    return 0;
}
`)
	want := "[3   |       1|007|00ff|ab]"
	if len(out) != 1 || out[0] != want {
		t.Fatalf("formatted = %v, want %q", out, want)
	}
}

func TestLangSnprintfTruncates(t *testing.T) {
	out := runOutput(t, `
int main() {
    char fname[64];
    int n = snprintf(fname, 9, "%s", "/scratch/hacc.h5");
    if (n == 16) {
        printf(fname);
    }
    return 0;
}
`)
	if len(out) != 1 || out[0] != "/scratch" {
		t.Fatalf("snprintf truncation = %v, want /scratch (with full-length return)", out)
	}
}

func TestLangStrncpy(t *testing.T) {
	out := runOutput(t, `
int main() {
    char a[64];
    char b[64];
    strncpy(a, "/scratch/file.h5", 8);
    strncpy(b, "/tmp/x.h5", 64);
    printf(a);
    printf(b);
    return 0;
}
`)
	if len(out) != 2 || out[0] != "/scratch" || out[1] != "/tmp/x.h5" {
		t.Fatalf("strncpy = %v, want [/scratch /tmp/x.h5]", out)
	}
}
