package cinterp

import (
	"fmt"
	"sync"

	"tunio/internal/csrc"
	"tunio/internal/hdf5"
)

// Result summarizes one SPMD execution.
type Result struct {
	// Output holds rank 0's printf strings.
	Output []string
	// LoopScale is the actual original-to-executed iteration ratio of
	// loop-reduced loops across all ranks (1 when no reduction ran). The
	// paper multiplies the kernel's scalable I/O metrics by this factor
	// to estimate the original application's footprint.
	LoopScale float64
}

// Run executes the program SPMD across the library's communicator: one
// goroutine per rank, synchronized at I/O and MPI calls by a coordinator
// that turns each collective arrival group into a single simulated phase.
// Timing and counters land in lib.Sim().
func Run(prog *csrc.File, lib *hdf5.Library) (*Result, error) {
	if prog == nil {
		return nil, fmt.Errorf("cinterp: nil program")
	}
	if prog.Func("main") == nil {
		return nil, fmt.Errorf("cinterp: program has no main")
	}
	nprocs := lib.Nprocs()
	coord := newCoordinator(lib, nprocs)

	interps := make([]*interp, nprocs)
	var wg sync.WaitGroup
	for r := 0; r < nprocs; r++ {
		interps[r] = newInterp(prog, r, nprocs, coord)
		wg.Add(1)
		go func(in *interp) {
			defer wg.Done()
			in.runMain() // errors reported through coord.done
		}(interps[r])
	}

	err := coord.run()
	wg.Wait()

	res := &Result{Output: interps[0].output, LoopScale: 1}
	var orig, reduced int64
	for _, in := range interps {
		orig += in.loopOrig
		reduced += in.loopReduced
	}
	if reduced > 0 {
		res.LoopScale = float64(orig) / float64(reduced)
	}
	return res, err
}
