package cinterp

import (
	"strings"
	"testing"

	"tunio/internal/csrc"
)

func mustParse(t *testing.T, src string) *csrc.File {
	t.Helper()
	f, err := csrc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFoldMacroArithmeticAndSizeof(t *testing.T) {
	f := mustParse(t, `
#define PARTICLES 1024
#define SEGMENTS 4
#define PERSEG (PARTICLES / SEGMENTS)
int main() {
    long n = PARTICLES * sizeof(double);
    long per = PERSEG;
    return 0;
}
`)
	rep := Fold(f)
	if rep.FoldedExprs == 0 {
		t.Fatal("nothing folded")
	}
	src := csrc.Format(f)
	if !strings.Contains(src, "8192") {
		t.Errorf("PARTICLES * sizeof(double) not folded to 8192:\n%s", src)
	}
	if !strings.Contains(src, "256") {
		t.Errorf("PERSEG not folded to 256:\n%s", src)
	}
}

func TestFoldPropagatesConstLocals(t *testing.T) {
	f := mustParse(t, `
int main() {
    int n = 100;
    int m = n * 2;
    int i = 0;
    int total = 0;
    for (i = 0; i < m; i++) {
        total = total + n;
    }
    return total;
}
`)
	Fold(f)
	src := csrc.Format(f)
	if !strings.Contains(src, "i < 200") {
		t.Errorf("loop bound m not folded to 200:\n%s", src)
	}
	if !strings.Contains(src, "total + 100") {
		t.Errorf("n use in loop body not folded to 100:\n%s", src)
	}
}

func TestFoldLeavesMutatedAndUnknownAlone(t *testing.T) {
	f := mustParse(t, `
int compute(int k) {
    return k + 1;
}
int main(int argc, char** argv) {
    int n = 5;
    int i = 0;
    for (i = 0; i < 3; i++) {
        n = n + 1;
    }
    int after = n;
    int fromParam = argc + 1;
    int fromCall = compute(7);
    return after + fromParam + fromCall;
}
`)
	Fold(f)
	src := csrc.Format(f)
	for _, keep := range []string{"after = n", "argc + 1", "compute(7)", "k + 1"} {
		if !strings.Contains(src, keep) {
			t.Errorf("%q was folded but must not be:\n%s", keep, src)
		}
	}
}

func TestFoldRespectsAddressTakenAndGlobals(t *testing.T) {
	f := mustParse(t, `
int shared = 3;
void bump() {
    shared = shared + 1;
}
int main() {
    int n = 10;
    MPI_Comm_rank(MPI_COMM_WORLD, &n);
    int use = n;
    shared = 7;
    bump();
    int g = shared;
    return use + g;
}
`)
	Fold(f)
	src := csrc.Format(f)
	if !strings.Contains(src, "use = n") {
		t.Errorf("address-taken n was folded:\n%s", src)
	}
	if !strings.Contains(src, "g = shared") {
		t.Errorf("global shared was folded despite interleaved call:\n%s", src)
	}
}

func TestFoldShadowedNamesNotSubstituted(t *testing.T) {
	f := mustParse(t, `
int main() {
    int n = 4;
    if (1) {
        int n = 8;
        printf("%d", n);
    }
    int out = n;
    return out;
}
`)
	Fold(f)
	src := csrc.Format(f)
	if !strings.Contains(src, "out = n") {
		t.Errorf("shadowed n was substituted (unsound):\n%s", src)
	}
}

func TestFoldShortCircuitMirrorsInterpreter(t *testing.T) {
	f := mustParse(t, `
int main() {
    int a = 0 && unknown_call();
    int b = 1 || unknown_call();
    int c = 3 / 1;
    int d = 7 % 2;
    double e = 1.0 / 4.0;
    return 0;
}
`)
	Fold(f)
	src := csrc.Format(f)
	for _, want := range []string{"a = 0", "b = 1", "c = 3", "d = 1", "e = 0.25"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q after fold:\n%s", want, src)
		}
	}
}

func TestFoldKeepsDivisionByZeroForRuntime(t *testing.T) {
	f := mustParse(t, `
int main() {
    int x = 1 / 0;
    return x;
}
`)
	Fold(f)
	if !strings.Contains(csrc.Format(f), "1 / 0") {
		t.Fatal("division by zero folded away; it must fail at runtime")
	}
}
