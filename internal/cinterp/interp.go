package cinterp

import (
	"errors"
	"fmt"

	"tunio/internal/csrc"
)

// control-flow sentinels.
var (
	errBreak    = errors.New("cinterp: break")
	errContinue = errors.New("cinterp: continue")
)

type returnSignal struct{ val Value }

func (returnSignal) Error() string { return "cinterp: return" }

// scope is a lexical variable environment.
type scope struct {
	vars   map[string]*Value
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: make(map[string]*Value), parent: parent}
}

func (s *scope) lookup(name string) *Value {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v
		}
	}
	return nil
}

func (s *scope) declare(name string, v Value) *Value {
	slot := new(Value)
	*slot = v
	s.vars[name] = slot
	return slot
}

// interp executes one rank's program.
type interp struct {
	prog    *csrc.File
	rank    int
	nprocs  int
	coord   *coordinator
	globals *scope
	spaces  map[int64]*spaceObj // rank-local dataspaces
	plists  map[int64]*plistObj // rank-local property lists
	nextID  int64
	output  []string // printf output (rank 0 retained)
	maxOps  int64    // safety valve against runaway loops
	ops     int64

	// loop-reduction accounting: original vs actually executed iterations
	// of __loop_reduce-wrapped bounds, for post-run metric scaling
	loopOrig    int64
	loopReduced int64
}

// spaceObj is a rank-local dataspace with an optional hyperslab selection.
type spaceObj struct {
	dims  []int64
	start []int64
	count []int64 // nil = whole space selected
}

// plistObj is a rank-local property list (only chunking is modeled).
type plistObj struct {
	chunk []int64
}

func newInterp(prog *csrc.File, rank, nprocs int, coord *coordinator) *interp {
	in := &interp{
		prog:   prog,
		rank:   rank,
		nprocs: nprocs,
		coord:  coord,
		spaces: map[int64]*spaceObj{},
		plists: map[int64]*plistObj{},
		// odd per-rank ID space, disjoint from the coordinator's even IDs
		nextID: int64(rank+1)<<32 | 1,
		maxOps: 50_000_000,
	}
	in.globals = newScope(nil)
	for _, g := range prog.Globals {
		v, err := in.declValue(g, in.globals)
		if err == nil {
			in.globals.declare(g.Name, v)
		}
	}
	return in
}

func (in *interp) allocID() int64 {
	id := in.nextID
	in.nextID += 2
	return id
}

// runMain executes main and reports done to the coordinator.
func (in *interp) runMain() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cinterp: rank %d panicked: %v", in.rank, r)
		}
		in.coord.done(in.rank, err)
	}()
	mainFn := in.prog.Func("main")
	if mainFn == nil {
		return fmt.Errorf("cinterp: no main function")
	}
	_, err = in.callFunc(mainFn, nil)
	if rs := (returnSignal{}); errors.As(err, &rs) {
		err = nil
	}
	return err
}

func (in *interp) callFunc(fn *csrc.FuncDecl, args []Value) (Value, error) {
	sc := newScope(in.globals)
	for i, p := range fn.Params {
		if p.Name == "" {
			continue
		}
		var v Value
		if i < len(args) {
			v = args[i]
		}
		sc.declare(p.Name, v)
	}
	err := in.execBlock(fn.Body, sc)
	var rs returnSignal
	if errors.As(err, &rs) {
		return rs.val, nil
	}
	return Value{}, err
}

func (in *interp) step() error {
	in.ops++
	if in.ops > in.maxOps {
		return fmt.Errorf("cinterp: rank %d exceeded %d operations (runaway loop?)", in.rank, in.maxOps)
	}
	return nil
}

func (in *interp) execBlock(b *csrc.Block, sc *scope) error {
	inner := newScope(sc)
	for _, s := range b.Stmts {
		if err := in.exec(s, inner); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) exec(s csrc.Stmt, sc *scope) error {
	if err := in.step(); err != nil {
		return err
	}
	switch st := s.(type) {
	case *csrc.DeclStmt:
		v, err := in.declValue(st, sc)
		if err != nil {
			return err
		}
		sc.declare(st.Name, v)
		return nil
	case *csrc.ExprStmt:
		_, err := in.eval(st.X, sc)
		return err
	case *csrc.AssignStmt:
		return in.execAssign(st, sc)
	case *csrc.Block:
		return in.execBlock(st, sc)
	case *csrc.IfStmt:
		cond, err := in.eval(st.Cond, sc)
		if err != nil {
			return err
		}
		if cond.Truthy() {
			return in.execBlock(st.Then, sc)
		}
		if st.Else != nil {
			return in.execBlock(st.Else, sc)
		}
		return nil
	case *csrc.ForStmt:
		loopScope := newScope(sc)
		if st.Init != nil {
			if err := in.exec(st.Init, loopScope); err != nil {
				return err
			}
		}
		for {
			if st.Cond != nil {
				c, err := in.eval(st.Cond, loopScope)
				if err != nil {
					return err
				}
				if !c.Truthy() {
					return nil
				}
			}
			err := in.execBlock(st.Body, loopScope)
			switch {
			case err == nil:
			case errors.Is(err, errBreak):
				return nil
			case errors.Is(err, errContinue):
			default:
				return err
			}
			if st.Post != nil {
				if err := in.exec(st.Post, loopScope); err != nil {
					return err
				}
			}
		}
	case *csrc.WhileStmt:
		for {
			c, err := in.eval(st.Cond, sc)
			if err != nil {
				return err
			}
			if !c.Truthy() {
				return nil
			}
			err = in.execBlock(st.Body, sc)
			switch {
			case err == nil:
			case errors.Is(err, errBreak):
				return nil
			case errors.Is(err, errContinue):
			default:
				return err
			}
		}
	case *csrc.ReturnStmt:
		var v Value
		if st.X != nil {
			var err error
			v, err = in.eval(st.X, sc)
			if err != nil {
				return err
			}
		}
		return returnSignal{val: v}
	case *csrc.BreakStmt:
		return errBreak
	case *csrc.ContinueStmt:
		return errContinue
	default:
		return fmt.Errorf("cinterp: unsupported statement %T", s)
	}
}

func (in *interp) declValue(st *csrc.DeclStmt, sc *scope) (Value, error) {
	if st.ArrayLen != nil || st.InitList != nil {
		n := int64(len(st.InitList))
		if st.ArrayLen != nil {
			lv, err := in.eval(st.ArrayLen, sc)
			if err != nil {
				return Value{}, err
			}
			n = lv.AsInt()
		}
		if n < 0 || n > 1<<20 {
			return Value{}, fmt.Errorf("cinterp: array %s has unreasonable length %d", st.Name, n)
		}
		arr := make([]Value, n)
		isF := isFloatType(st.Type)
		for i := range arr {
			if isF {
				arr[i] = FloatVal(0)
			} else {
				arr[i] = IntVal(0)
			}
		}
		for i, e := range st.InitList {
			if int64(i) >= n {
				break
			}
			v, err := in.eval(e, sc)
			if err != nil {
				return Value{}, err
			}
			arr[i] = v
		}
		return Value{Kind: KArray, Arr: arr}, nil
	}
	if st.Init != nil {
		return in.eval(st.Init, sc)
	}
	if isFloatType(st.Type) {
		return FloatVal(0), nil
	}
	return IntVal(0), nil
}

func (in *interp) execAssign(st *csrc.AssignStmt, sc *scope) error {
	slot, err := in.lvalue(st.LHS, sc)
	if err != nil {
		return err
	}
	switch st.Op {
	case "++":
		if slot.Kind == KFloat {
			slot.F++
		} else {
			slot.I++
		}
		return nil
	case "--":
		if slot.Kind == KFloat {
			slot.F--
		} else {
			slot.I--
		}
		return nil
	}
	rhs, err := in.eval(st.RHS, sc)
	if err != nil {
		return err
	}
	if st.Op == "=" {
		*slot = rhs
		return nil
	}
	op := st.Op[:1] // "+=" -> "+"
	nv, err := binaryOp(op, *slot, rhs)
	if err != nil {
		return err
	}
	*slot = nv
	return nil
}

// lvalue resolves an assignable location.
func (in *interp) lvalue(e csrc.Expr, sc *scope) (*Value, error) {
	switch x := e.(type) {
	case *csrc.Ident:
		if slot := sc.lookup(x.Name); slot != nil {
			return slot, nil
		}
		// implicit declaration tolerated for kernel robustness
		return sc.declare(x.Name, IntVal(0)), nil
	case *csrc.IndexExpr:
		base, err := in.eval(x.X, sc)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(x.Index, sc)
		if err != nil {
			return nil, err
		}
		if base.Kind == KBuf {
			// writes into malloc'd buffers are symbolic: return a scratch
			// slot (the simulation does not materialize payloads)
			return new(Value), nil
		}
		if base.Kind != KArray {
			return nil, fmt.Errorf("cinterp: indexing non-array %s", base)
		}
		i := idx.AsInt()
		if i < 0 || i >= int64(len(base.Arr)) {
			return nil, fmt.Errorf("cinterp: index %d out of range %d", i, len(base.Arr))
		}
		return &base.Arr[i], nil
	case *csrc.UnaryExpr:
		if x.Op == "*" {
			v, err := in.eval(x.X, sc)
			if err != nil {
				return nil, err
			}
			if v.Kind == KRef && v.Ref != nil {
				return v.Ref, nil
			}
			if v.Kind == KBuf {
				return new(Value), nil
			}
			return nil, fmt.Errorf("cinterp: dereference of non-pointer %s", v)
		}
	}
	return nil, fmt.Errorf("cinterp: not an lvalue: %s", csrc.PrintExpr(e))
}

func (in *interp) eval(e csrc.Expr, sc *scope) (Value, error) {
	if err := in.step(); err != nil {
		return Value{}, err
	}
	switch x := e.(type) {
	case *csrc.NumberLit:
		if x.IsFloat {
			return FloatVal(x.Float), nil
		}
		return IntVal(x.Int), nil
	case *csrc.StringLit:
		return StrVal(x.Value), nil
	case *csrc.CharLit:
		return IntVal(int64(x.Value)), nil
	case *csrc.Ident:
		if slot := sc.lookup(x.Name); slot != nil {
			return *slot, nil
		}
		if v, ok := constants[x.Name]; ok {
			return v, nil
		}
		return Value{}, fmt.Errorf("cinterp: undefined variable %q", x.Name)
	case *csrc.SizeofExpr:
		return IntVal(typeSize(x.Type)), nil
	case *csrc.CastExpr:
		v, err := in.eval(x.X, sc)
		if err != nil {
			return Value{}, err
		}
		if isFloatType(x.Type) {
			return FloatVal(v.AsFloat()), nil
		}
		if x.Type[len(x.Type)-1] == '*' {
			return v, nil // pointer casts preserve the value
		}
		return IntVal(v.AsInt()), nil
	case *csrc.UnaryExpr:
		switch x.Op {
		case "&":
			slot, err := in.lvalue(x.X, sc)
			if err != nil {
				return Value{}, err
			}
			return Value{Kind: KRef, Ref: slot}, nil
		case "*":
			slot, err := in.lvalue(e, sc)
			if err != nil {
				return Value{}, err
			}
			return *slot, nil
		}
		v, err := in.eval(x.X, sc)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "-":
			if v.Kind == KFloat {
				return FloatVal(-v.F), nil
			}
			return IntVal(-v.AsInt()), nil
		case "!":
			if v.Truthy() {
				return IntVal(0), nil
			}
			return IntVal(1), nil
		case "~":
			return IntVal(^v.AsInt()), nil
		}
		return Value{}, fmt.Errorf("cinterp: unary %q unsupported", x.Op)
	case *csrc.BinaryExpr:
		// short-circuit logicals
		if x.Op == "&&" || x.Op == "||" {
			l, err := in.eval(x.X, sc)
			if err != nil {
				return Value{}, err
			}
			if x.Op == "&&" && !l.Truthy() {
				return IntVal(0), nil
			}
			if x.Op == "||" && l.Truthy() {
				return IntVal(1), nil
			}
			r, err := in.eval(x.Y, sc)
			if err != nil {
				return Value{}, err
			}
			if r.Truthy() {
				return IntVal(1), nil
			}
			return IntVal(0), nil
		}
		l, err := in.eval(x.X, sc)
		if err != nil {
			return Value{}, err
		}
		r, err := in.eval(x.Y, sc)
		if err != nil {
			return Value{}, err
		}
		return binaryOp(x.Op, l, r)
	case *csrc.IndexExpr:
		slot, err := in.lvalue(e, sc)
		if err != nil {
			return Value{}, err
		}
		return *slot, nil
	case *csrc.CallExpr:
		return in.call(x, sc)
	}
	return Value{}, fmt.Errorf("cinterp: unsupported expression %T", e)
}

func (in *interp) call(x *csrc.CallExpr, sc *scope) (Value, error) {
	// user-defined functions
	if fn := in.prog.Func(x.Fun); fn != nil {
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(a, sc)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return in.callFunc(fn, args)
	}
	return in.builtin(x, sc)
}

func binaryOp(op string, l, r Value) (Value, error) {
	useFloat := l.Kind == KFloat || r.Kind == KFloat
	switch op {
	case "+", "-", "*", "/", "%":
		if useFloat {
			a, b := l.AsFloat(), r.AsFloat()
			switch op {
			case "+":
				return FloatVal(a + b), nil
			case "-":
				return FloatVal(a - b), nil
			case "*":
				return FloatVal(a * b), nil
			case "/":
				if b == 0 {
					return Value{}, fmt.Errorf("cinterp: float division by zero")
				}
				return FloatVal(a / b), nil
			case "%":
				return Value{}, fmt.Errorf("cinterp: %% on floats")
			}
		}
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "+":
			return IntVal(a + b), nil
		case "-":
			return IntVal(a - b), nil
		case "*":
			return IntVal(a * b), nil
		case "/":
			if b == 0 {
				return Value{}, fmt.Errorf("cinterp: division by zero")
			}
			return IntVal(a / b), nil
		case "%":
			if b == 0 {
				return Value{}, fmt.Errorf("cinterp: modulo by zero")
			}
			return IntVal(a % b), nil
		}
	case "<", ">", "<=", ">=", "==", "!=":
		a, b := l.AsFloat(), r.AsFloat()
		var res bool
		switch op {
		case "<":
			res = a < b
		case ">":
			res = a > b
		case "<=":
			res = a <= b
		case ">=":
			res = a >= b
		case "==":
			res = a == b
		case "!=":
			res = a != b
		}
		if res {
			return IntVal(1), nil
		}
		return IntVal(0), nil
	case "<<", ">>", "&", "|", "^":
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "<<":
			return IntVal(a << uint(b&63)), nil
		case ">>":
			return IntVal(a >> uint(b&63)), nil
		case "&":
			return IntVal(a & b), nil
		case "|":
			return IntVal(a | b), nil
		case "^":
			return IntVal(a ^ b), nil
		}
	}
	return Value{}, fmt.Errorf("cinterp: unsupported operator %q", op)
}

// constants the workloads reference (HDF5/MPI macro equivalents).
var constants = map[string]Value{
	"NULL":               IntVal(0),
	"MPI_COMM_WORLD":     IntVal(0),
	"MPI_INFO_NULL":      IntVal(0),
	"H5F_ACC_TRUNC":      IntVal(1),
	"H5F_ACC_RDONLY":     IntVal(0),
	"H5F_ACC_RDWR":       IntVal(2),
	"H5P_DEFAULT":        IntVal(0),
	"H5T_NATIVE_DOUBLE":  IntVal(1),
	"H5T_NATIVE_INT":     IntVal(2),
	"H5T_NATIVE_LONG":    IntVal(3),
	"H5S_ALL":            IntVal(0),
	"H5S_SELECT_SET":     IntVal(0),
	"H5P_DATASET_CREATE": IntVal(1),
	"H5P_FILE_ACCESS":    IntVal(2),
	"H5P_DATASET_XFER":   IntVal(3),
}
