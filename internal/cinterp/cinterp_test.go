package cinterp

import (
	"strings"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/discovery"
	"tunio/internal/hdf5"
	"tunio/internal/ioreq"
	"tunio/internal/lustre"
	"tunio/internal/mpiio"
	"tunio/internal/posixio"
)

// newLib builds a stack for nprocs simulated ranks.
func newLib(t *testing.T, nodes, ppn int) *hdf5.Library {
	t.Helper()
	c := cluster.CoriHaswell(nodes, ppn)
	c.Noise = 0
	sim, err := cluster.NewSim(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lustre.New(lustre.CoriScratch(), sim)
	if err != nil {
		t.Fatal(err)
	}
	lb := &lustre.Backend{FS: fs, StripeCount: 8, StripeSize: 1 << 20}
	mem := posixio.NewMemFS(sim)
	resolver := func(path string) ioreq.Backend {
		if posixio.IsMemPath(path) {
			return mem
		}
		return lb
	}
	lib, err := hdf5.NewLibrary(sim, resolver, mpiio.Hints{}, hdf5.DefaultConfig(), nodes*ppn)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// miniVPIC writes PER_RANK doubles per rank into a shared 1-D dataset.
const miniVPIC = `
#define PER_RANK 1024

int main(int argc, char** argv) {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);

    compute_flops(1000000.0);

    hsize_t total[1] = {0};
    total[0] = nprocs * PER_RANK;
    hid_t file = H5Fcreate("/scratch/mini.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    hid_t filespace = H5Screate_simple(1, total, NULL);

    hsize_t start[1] = {0};
    hsize_t count[1] = {PER_RANK};
    start[0] = rank * PER_RANK;
    H5Sselect_hyperslab(filespace, H5S_SELECT_SET, start, NULL, count, NULL);

    double* buf = (double*)malloc(PER_RANK * sizeof(double));
    hid_t dset = H5Dcreate(file, "x", H5T_NATIVE_DOUBLE, filespace, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    H5Dwrite(dset, H5T_NATIVE_DOUBLE, H5S_ALL, filespace, H5P_DEFAULT, buf);
    H5Dclose(dset);
    H5Sclose(filespace);
    H5Fclose(file);
    free(buf);
    MPI_Finalize();
    return 0;
}
`

func parseProg(t *testing.T, src string) *csrc.File {
	t.Helper()
	f, err := csrc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunMiniVPIC(t *testing.T) {
	lib := newLib(t, 2, 4) // 8 ranks
	prog := parseProg(t, miniVPIC)
	if _, err := Run(prog, lib); err != nil {
		t.Fatal(err)
	}
	app := lib.Sim().Report.App()
	want := int64(8 * 1024 * 8) // 8 ranks x 1024 doubles x 8B
	if app.BytesWritten != want {
		t.Fatalf("wrote %d bytes, want %d", app.BytesWritten, want)
	}
	if app.WriteOps != 8 {
		t.Fatalf("write ops = %d, want 8 (one H5Dwrite per rank)", app.WriteOps)
	}
	if lib.Sim().Now() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestRunValidation(t *testing.T) {
	lib := newLib(t, 1, 2)
	if _, err := Run(nil, lib); err == nil {
		t.Fatal("nil program: want error")
	}
	noMain := parseProg(t, "int helper() { return 0; }")
	if _, err := Run(noMain, lib); err == nil {
		t.Fatal("no main: want error")
	}
}

func TestRunDeterministic(t *testing.T) {
	prog := parseProg(t, miniVPIC)
	libA := newLib(t, 2, 4)
	libB := newLib(t, 2, 4)
	if _, err := Run(prog, libA); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, libB); err != nil {
		t.Fatal(err)
	}
	if libA.Sim().Now() != libB.Sim().Now() {
		t.Fatalf("nondeterministic runtime: %v vs %v", libA.Sim().Now(), libB.Sim().Now())
	}
}

func TestRankDivergentIO(t *testing.T) {
	// Only rank 0 writes: the coordinator must not deadlock and the write
	// must be a single-slab phase.
	src := `
int main() {
    int rank;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    hid_t file = H5Fcreate("/scratch/r0.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    if (rank == 0) {
        hsize_t dims[1] = {512};
        hid_t sp = H5Screate_simple(1, dims, NULL);
        hsize_t start[1] = {0};
        hsize_t count[1] = {512};
        H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
        hid_t d = H5Dcreate(file, "meta", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
        H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
        H5Dclose(d);
        H5Sclose(sp);
    }
    H5Fclose(file);
    MPI_Finalize();
    return 0;
}
`
	lib := newLib(t, 1, 4)
	if _, err := Run(parseProg(t, src), lib); err != nil {
		t.Fatal(err)
	}
	app := lib.Sim().Report.App()
	if app.WriteOps != 1 || app.BytesWritten != 512*8 {
		t.Fatalf("counters: %+v", app)
	}
}

func TestChunkedDatasetViaPlist(t *testing.T) {
	src := `
int main() {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    hsize_t dims[2] = {0, 256};
    dims[0] = nprocs;
    hid_t file = H5Fcreate("/scratch/chunky.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    hid_t sp = H5Screate_simple(2, dims, NULL);
    hid_t dcpl = H5Pcreate(H5P_DATASET_CREATE);
    hsize_t chunk[2] = {1, 256};
    H5Pset_chunk(dcpl, 2, chunk);
    hid_t d = H5Dcreate(file, "u", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, dcpl, H5P_DEFAULT);
    hsize_t start[2] = {0, 0};
    hsize_t count[2] = {1, 256};
    start[0] = rank;
    H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
    H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    H5Dclose(d);
    H5Pclose(dcpl);
    H5Sclose(sp);
    H5Fclose(file);
    MPI_Finalize();
    return 0;
}
`
	lib := newLib(t, 1, 4)
	if _, err := Run(parseProg(t, src), lib); err != nil {
		t.Fatal(err)
	}
	if got := lib.Sim().Report.App().BytesWritten; got != 4*256*8 {
		t.Fatalf("bytes = %d", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	src := `
int main() {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    hsize_t dims[1] = {0};
    dims[0] = nprocs * 128;
    hid_t file = H5Fcreate("/scratch/rw.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    hid_t sp = H5Screate_simple(1, dims, NULL);
    hsize_t start[1] = {0};
    hsize_t count[1] = {128};
    start[0] = rank * 128;
    H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
    hid_t d = H5Dcreate(file, "v", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    H5Dread(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    H5Dclose(d);
    H5Fclose(file);
    MPI_Finalize();
    return 0;
}
`
	lib := newLib(t, 1, 4)
	if _, err := Run(parseProg(t, src), lib); err != nil {
		t.Fatal(err)
	}
	app := lib.Sim().Report.App()
	if app.BytesRead != app.BytesWritten || app.BytesRead == 0 {
		t.Fatalf("round trip: wrote %d read %d", app.BytesWritten, app.BytesRead)
	}
	alpha := lib.Sim().Report.WriteRatio()
	if alpha != 0.5 {
		t.Fatalf("alpha = %v, want 0.5", alpha)
	}
}

func TestErrorsSurface(t *testing.T) {
	cases := []string{
		// open of a missing file
		`int main() { hid_t f = H5Fopen("/scratch/nope.h5", H5F_ACC_RDONLY, H5P_DEFAULT); return 0; }`,
		// write with no selection possible (H5S_ALL filespace)
		`int main() { H5Dwrite(42, 0, 0, 0, 0, 0); return 0; }`,
		// unknown function
		`int main() { frobnicate(1); return 0; }`,
		// division by zero
		`int main() { int x = 1 / 0; return 0; }`,
		// out-of-range index
		`int main() { hsize_t a[2] = {1, 2}; a[5] = 3; return 0; }`,
	}
	for i, src := range cases {
		lib := newLib(t, 1, 2)
		if _, err := Run(parseProg(t, src), lib); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestLoopReduceBuiltin(t *testing.T) {
	// A loop writing 100 steps, reduced to 1%: exactly 1 write happens
	// (floor(100*0.01) = 1).
	src := `
int main() {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    hsize_t dims[1] = {0};
    dims[0] = nprocs * 64;
    hid_t file = H5Fcreate("/scratch/loop.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    hid_t sp = H5Screate_simple(1, dims, NULL);
    hsize_t start[1] = {0};
    hsize_t count[1] = {64};
    start[0] = rank * 64;
    H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
    hid_t d = H5Dcreate(file, "w", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    for (int i = 0; i < __loop_reduce(100, 0.01); i++) {
        H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    }
    H5Dclose(d);
    H5Fclose(file);
    MPI_Finalize();
    return 0;
}
`
	lib := newLib(t, 1, 2)
	if _, err := Run(parseProg(t, src), lib); err != nil {
		t.Fatal(err)
	}
	if got := lib.Sim().Report.App().WriteOps; got != 2 { // 2 ranks x 1 iteration
		t.Fatalf("write ops = %d, want 2", got)
	}
}

func TestPrintfCollectsRankZero(t *testing.T) {
	src := `
int main() {
    int rank;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    printf("hello from the kernel\n");
    MPI_Finalize();
    return 0;
}
`
	lib := newLib(t, 1, 4)
	res, err := Run(parseProg(t, src), lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || !strings.Contains(res.Output[0], "hello") {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestDiscoveredKernelRuns(t *testing.T) {
	// End-to-end: full app with compute -> discovery -> kernel executes
	// and writes the same bytes with less simulated time.
	full := `
double physics(double t) {
    return t * 1.5;
}
int main(int argc, char** argv) {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    double t = 0.0;
    double energy = 0.0;
    hsize_t dims[1] = {0};
    dims[0] = nprocs * 2048;
    hid_t file = H5Fcreate("/scratch/e2e.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    hid_t sp = H5Screate_simple(1, dims, NULL);
    hsize_t start[1] = {0};
    hsize_t count[1] = {2048};
    start[0] = rank * 2048;
    H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
    hid_t d = H5Dcreate(file, "e", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    for (int step = 0; step < 4; step++) {
        compute_flops(500000000.0);
        t = t + 0.5;
        energy = physics(t);
        H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    }
    H5Dclose(d);
    H5Fclose(file);
    MPI_Finalize();
    return 0;
}
`
	// full application
	libFull := newLib(t, 1, 4)
	if _, err := Run(parseProg(t, full), libFull); err != nil {
		t.Fatal(err)
	}

	// discovered kernel
	k, err := discovery.Discover(full, discovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	libKernel := newLib(t, 1, 4)
	if _, err := Run(k.File, libKernel); err != nil {
		t.Fatalf("kernel failed: %v\nkernel source:\n%s", err, k.Source)
	}

	fw := libFull.Sim().Report.App().BytesWritten
	kw := libKernel.Sim().Report.App().BytesWritten
	if fw != kw {
		t.Fatalf("kernel wrote %d bytes, full app wrote %d", kw, fw)
	}
	if libKernel.Sim().Now() >= libFull.Sim().Now() {
		t.Fatalf("kernel (%.3fs) not faster than full app (%.3fs)",
			libKernel.Sim().Now(), libFull.Sim().Now())
	}
}

func TestCollectiveMismatchDetected(t *testing.T) {
	// Rank 0 waits at a barrier while rank 1 waits at MPI_Finalize: a
	// real MPI deadlock, which the coordinator must detect and fail.
	src := `
int main() {
    int rank;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
        MPI_Barrier(MPI_COMM_WORLD);
    }
    MPI_Finalize();
    return 0;
}
`
	lib := newLib(t, 1, 2)
	if _, err := Run(parseProg(t, src), lib); err == nil {
		t.Fatal("collective mismatch not detected")
	}
}

func TestManyRanksScale(t *testing.T) {
	// 128 ranks run the mini kernel without deadlock and in bounded time.
	lib := newLib(t, 4, 32)
	if _, err := Run(parseProg(t, miniVPIC), lib); err != nil {
		t.Fatal(err)
	}
	if got := lib.Sim().Report.App().WriteOps; got != 128 {
		t.Fatalf("write ops = %d", got)
	}
}

func TestGroupsAndAttributes(t *testing.T) {
	src := `
int main() {
    int rank;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    hid_t file = H5Fcreate("/scratch/ga.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    hid_t grp = H5Gcreate(file, "checkpoint", H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    hid_t attr = H5Acreate(file, "sim_time", H5T_NATIVE_DOUBLE, 0, H5P_DEFAULT, H5P_DEFAULT);
    H5Awrite(attr, H5T_NATIVE_DOUBLE, 0);
    H5Aclose(attr);
    hsize_t dims[1] = {256};
    hid_t sp = H5Screate_simple(1, dims, NULL);
    hsize_t start[1] = {0};
    hsize_t count[1] = {256};
    H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
    if (rank == 0) {
        hid_t d = H5Dcreate(grp, "inside_group", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
        H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
        H5Dclose(d);
    }
    H5Gclose(grp);
    H5Sclose(sp);
    H5Fclose(file);
    MPI_Finalize();
    return 0;
}
`
	lib := newLib(t, 1, 4)
	if _, err := Run(parseProg(t, src), lib); err != nil {
		t.Fatal(err)
	}
	if got := lib.Sim().Report.App().BytesWritten; got != 256*8 {
		t.Fatalf("dataset-in-group bytes = %d", got)
	}
}

func TestGroupErrors(t *testing.T) {
	src := `
int main() {
    hid_t file = H5Fcreate("/scratch/g2.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    hid_t g1 = H5Gcreate(file, "dup", H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    hid_t g2 = H5Gcreate(file, "dup", H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    return 0;
}
`
	lib := newLib(t, 1, 2)
	if _, err := Run(parseProg(t, src), lib); err == nil {
		t.Fatal("duplicate group: want error")
	}
}

func TestSimulatedComputeKernelRuns(t *testing.T) {
	// End-to-end: discovery with compute simulation produces a kernel whose
	// runtime sits between the bare kernel and the full application.
	full := `
int main(int argc, char** argv) {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    double t = 0.0;
    hsize_t dims[1] = {0};
    dims[0] = nprocs * 1024;
    hid_t file = H5Fcreate("/scratch/simc.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    hid_t sp = H5Screate_simple(1, dims, NULL);
    hsize_t start[1] = {0};
    hsize_t count[1] = {1024};
    start[0] = rank * 1024;
    H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
    hid_t d = H5Dcreate(file, "e", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    for (int step = 0; step < 3; step++) {
        t = t + 0.5;
        t = t * 1.01;
        t = t - 0.1;
        H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    }
    H5Dclose(d);
    H5Fclose(file);
    MPI_Finalize();
    return 0;
}
`
	run := func(prog *csrc.File) float64 {
		lib := newLib(t, 1, 4)
		if _, err := Run(prog, lib); err != nil {
			t.Fatal(err)
		}
		return lib.Sim().Now()
	}
	bare, err := discovery.Discover(full, discovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	simulated, err := discovery.Discover(full, discovery.Options{SimulateCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	tBare := run(bare.File)
	tSim := run(simulated.File)
	if tSim <= tBare {
		t.Fatalf("compute simulation added no time: bare %.4fs, simulated %.4fs", tBare, tSim)
	}
}
