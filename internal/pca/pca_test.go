package pca

import (
	"math"
	"math/rand"
	"testing"

	"tunio/internal/mat"
)

func TestFitValidation(t *testing.T) {
	if _, err := Fit(mat.New(1, 3)); err == nil {
		t.Fatal("1 observation: want error")
	}
	if _, err := Fit(mat.New(5, 0)); err == nil {
		t.Fatal("0 features: want error")
	}
}

func TestFitKnownAxis(t *testing.T) {
	// Points along the line y = 2x: first component must align with
	// (1,1)/sqrt2 in standardized space (both features perfectly correlated).
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 200)
	for i := range rows {
		x := rng.NormFloat64()
		rows[i] = []float64{x, 2 * x}
	}
	m, _ := mat.FromRows(rows)
	res, err := Fit(m)
	if err != nil {
		t.Fatal(err)
	}
	c0 := res.Components.RowView(0)
	want := 1 / math.Sqrt2
	if math.Abs(math.Abs(c0[0])-want) > 1e-6 || math.Abs(math.Abs(c0[1])-want) > 1e-6 {
		t.Fatalf("first component = %v, want +-[0.707 0.707]", c0)
	}
	ev := res.ExplainedVariance()
	if ev[0] < 0.999 {
		t.Fatalf("explained variance of PC1 = %v, want ~1 for collinear data", ev[0])
	}
}

func TestEigenvaluesSumToTrace(t *testing.T) {
	// For standardized data, total variance = number of (non-constant)
	// features; eigenvalues must sum to it.
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	m, _ := mat.FromRows(rows)
	res, err := Fit(m)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.Eigenvalues {
		sum += v
	}
	if math.Abs(sum-3) > 1e-9 {
		t.Fatalf("eigenvalue sum = %v, want 3", sum)
	}
	// decreasing order
	for i := 1; i < len(res.Eigenvalues); i++ {
		if res.Eigenvalues[i] > res.Eigenvalues[i-1]+1e-12 {
			t.Fatalf("eigenvalues not decreasing: %v", res.Eigenvalues)
		}
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 150)
	for i := range rows {
		a := rng.NormFloat64()
		rows[i] = []float64{a, a + 0.5*rng.NormFloat64(), rng.NormFloat64(), 0.3*a + rng.NormFloat64()}
	}
	m, _ := mat.FromRows(rows)
	res, err := Fit(m)
	if err != nil {
		t.Fatal(err)
	}
	d := 4
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			dot := mat.Dot(res.Components.RowView(i), res.Components.RowView(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("components not orthonormal: <c%d,c%d> = %v", i, j, dot)
			}
		}
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	rows := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	m, _ := mat.FromRows(rows)
	res, err := Fit(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Eigenvalues {
		if math.IsNaN(v) {
			t.Fatal("NaN eigenvalue with constant feature")
		}
	}
}

func TestTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	m, _ := mat.FromRows(rows)
	res, _ := Fit(m)
	p, err := res.Transform([]float64{0.5, -0.5}, 2)
	if err != nil || len(p) != 2 {
		t.Fatalf("Transform: %v, %v", p, err)
	}
	if _, err := res.Transform([]float64{1}, 1); err == nil {
		t.Fatal("short observation: want error")
	}
	if _, err := res.Transform([]float64{1, 2}, 3); err == nil {
		t.Fatal("k too large: want error")
	}
	if _, err := res.Transform([]float64{1, 2}, 0); err == nil {
		t.Fatal("k zero: want error")
	}
}

func TestTransformPreservesDistances(t *testing.T) {
	// Full-rank transform of standardized data is an isometry in
	// standardized space.
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 80)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	m, _ := mat.FromRows(rows)
	res, _ := Fit(m)
	a := []float64{0.1, 0.2, 0.3}
	b := []float64{-0.4, 0.5, 0.6}
	za := make([]float64, 3)
	zb := make([]float64, 3)
	for j := 0; j < 3; j++ {
		za[j] = (a[j] - res.Means[j]) / res.Stds[j]
		zb[j] = (b[j] - res.Means[j]) / res.Stds[j]
	}
	pa, _ := res.Transform(a, 3)
	pb, _ := res.Transform(b, 3)
	dz := mat.Norm2(mat.VecSub(za, zb))
	dp := mat.Norm2(mat.VecSub(pa, pb))
	if math.Abs(dz-dp) > 1e-8 {
		t.Fatalf("distance not preserved: %v vs %v", dz, dp)
	}
}

func TestImpactScoresIdentifyDrivingFeature(t *testing.T) {
	// perf depends strongly on feature 0, weakly on feature 1, not at all
	// on feature 2: impact ranking must order them 0 > 1 > 2.
	rng := rand.New(rand.NewSource(6))
	n := 400
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		f0 := rng.Float64()
		f1 := rng.Float64()
		f2 := rng.Float64()
		rows[i] = []float64{f0, f1, f2}
		y[i] = 10*f0 + 1*f1 + 0.05*rng.NormFloat64()
	}
	m, _ := mat.FromRows(rows)
	scores, err := ImpactScores(m, y)
	if err != nil {
		t.Fatal(err)
	}
	rank := RankDescending(scores)
	if rank[0] != 0 {
		t.Fatalf("top feature = %d (scores %v), want 0", rank[0], scores)
	}
	if scores[0] <= scores[2] {
		t.Fatalf("driving feature not scored above noise feature: %v", scores)
	}
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores sum to %v, want 1", sum)
	}
}

func TestImpactScoresValidation(t *testing.T) {
	m, _ := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := ImpactScores(m, []float64{1}); err == nil {
		t.Fatal("mismatched target length: want error")
	}
}

func TestRankDescendingStable(t *testing.T) {
	rank := RankDescending([]float64{0.2, 0.5, 0.2, 0.1})
	if rank[0] != 1 || rank[1] != 0 || rank[2] != 2 || rank[3] != 3 {
		t.Fatalf("rank = %v", rank)
	}
}

func TestJacobiOnDiagonal(t *testing.T) {
	m, _ := mat.FromRows([][]float64{{3, 0}, {0, 7}})
	vals, vecs := jacobiEigen(m)
	found3, found7 := false, false
	for _, v := range vals {
		if math.Abs(v-3) < 1e-10 {
			found3 = true
		}
		if math.Abs(v-7) < 1e-10 {
			found7 = true
		}
	}
	if !found3 || !found7 {
		t.Fatalf("eigenvalues = %v, want {3, 7}", vals)
	}
	// eigenvectors of a diagonal matrix are the identity columns
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-10 && math.Abs(math.Abs(vecs.At(0, 1))-1) > 1e-10 {
		t.Fatalf("unexpected eigenvectors %v", vecs)
	}
}
