// Package pca implements principal component analysis over parameter-sweep
// observations.
//
// TunIO's Smart Configuration Generation agent is trained offline from
// parameter sweeps on representative I/O kernels: after sweeping, a PCA is
// performed on the (parameter values, perf) observations to isolate the
// parameters with the highest impact on the tuning objective (§III-C of the
// paper). This package provides that analysis: standardization, covariance,
// a Jacobi eigensolver (sufficient for the ~12-dimensional spaces TunIO
// tunes), and an impact ranking that weights each parameter's loadings by
// the variance explained and by its correlation with perf.
package pca

import (
	"fmt"
	"math"
	"sort"

	"tunio/internal/mat"
)

// Result holds a fitted PCA.
type Result struct {
	// Components holds one principal axis per row, in decreasing
	// eigenvalue order, expressed in standardized-feature space.
	Components *mat.Matrix
	// Eigenvalues are the variances along each component, decreasing.
	Eigenvalues []float64
	// Means and Stds are the per-feature standardization constants.
	Means, Stds []float64
}

// Fit computes a PCA of the rows of x (observations x features).
func Fit(x *mat.Matrix) (*Result, error) {
	n, d := x.Rows, x.Cols
	if n < 2 {
		return nil, fmt.Errorf("pca: need at least 2 observations, have %d", n)
	}
	if d == 0 {
		return nil, fmt.Errorf("pca: no features")
	}

	means := make([]float64, d)
	stds := make([]float64, d)
	for j := 0; j < d; j++ {
		col := x.Col(j)
		means[j] = mat.Mean(col)
		// Sample (n-1) standard deviation, matching the covariance
		// normalization below so standardized features have unit variance.
		stds[j] = math.Sqrt(mat.Variance(col) * float64(n) / float64(n-1))
		if stds[j] == 0 {
			stds[j] = 1 // constant feature: contributes nothing after centering
		}
	}

	// standardized copy
	z := mat.New(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			z.Set(i, j, (x.At(i, j)-means[j])/stds[j])
		}
	}

	// covariance = z^T z / (n-1)
	cov, err := mat.Mul(z.T(), z)
	if err != nil {
		return nil, err
	}
	cov.Scale(1 / float64(n-1))

	vals, vecs := jacobiEigen(cov)

	// sort by decreasing eigenvalue
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })

	comps := mat.New(d, d)
	sortedVals := make([]float64, d)
	for r, idx := range order {
		sortedVals[r] = vals[idx]
		for j := 0; j < d; j++ {
			comps.Set(r, j, vecs.At(j, idx)) // eigenvectors are columns of vecs
		}
	}

	return &Result{Components: comps, Eigenvalues: sortedVals, Means: means, Stds: stds}, nil
}

// jacobiEigen computes eigenvalues and eigenvectors of a symmetric matrix
// using cyclic Jacobi rotations. Eigenvectors are returned as columns.
func jacobiEigen(a *mat.Matrix) ([]float64, *mat.Matrix) {
	n := a.Rows
	m := a.Clone()
	v := mat.Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				for k := 0; k < n; k++ {
					mkp, mkq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*mkp-s*mkq)
					m.Set(k, q, s*mkp+c*mkq)
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*mpk-s*mqk)
					m.Set(q, k, s*mpk+c*mqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	return vals, v
}

// ExplainedVariance returns the fraction of total variance captured by each
// component.
func (r *Result) ExplainedVariance() []float64 {
	total := 0.0
	for _, v := range r.Eigenvalues {
		if v > 0 {
			total += v
		}
	}
	out := make([]float64, len(r.Eigenvalues))
	if total == 0 {
		return out
	}
	for i, v := range r.Eigenvalues {
		if v > 0 {
			out[i] = v / total
		}
	}
	return out
}

// Transform projects an observation (raw feature space) onto the first k
// components.
func (r *Result) Transform(obs []float64, k int) ([]float64, error) {
	d := len(r.Means)
	if len(obs) != d {
		return nil, fmt.Errorf("pca: Transform: observation has %d features, want %d", len(obs), d)
	}
	if k <= 0 || k > d {
		return nil, fmt.Errorf("pca: Transform: k=%d out of range 1..%d", k, d)
	}
	z := make([]float64, d)
	for j := range z {
		z[j] = (obs[j] - r.Means[j]) / r.Stds[j]
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		out[c] = mat.Dot(r.Components.RowView(c), z)
	}
	return out, nil
}

// ImpactScores ranks feature impact on a target column. Callers pass the
// feature matrix x and the aligned target values y (e.g. perf); the score of
// feature j combines (a) the PCA loadings of j weighted by explained
// variance of each component and (b) the absolute correlation of feature j
// with y. Both terms are normalized to [0,1]; the returned scores sum to 1.
func ImpactScores(x *mat.Matrix, y []float64) ([]float64, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("pca: ImpactScores: %d observations vs %d targets", x.Rows, len(y))
	}
	res, err := Fit(x)
	if err != nil {
		return nil, err
	}
	ev := res.ExplainedVariance()
	d := x.Cols

	loading := make([]float64, d)
	for c := 0; c < d; c++ {
		row := res.Components.RowView(c)
		for j := 0; j < d; j++ {
			loading[j] += ev[c] * math.Abs(row[j])
		}
	}

	corr := make([]float64, d)
	for j := 0; j < d; j++ {
		corr[j] = math.Abs(correlation(x.Col(j), y))
	}

	normalize(loading)
	normalize(corr)

	scores := make([]float64, d)
	for j := 0; j < d; j++ {
		scores[j] = 0.5*loading[j] + 0.5*corr[j]
	}
	normalize(scores)
	return scores, nil
}

func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

func correlation(a, b []float64) float64 {
	ma, mb := mat.Mean(a), mat.Mean(b)
	num, va, vb := 0.0, 0.0, 0.0
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		num += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return num / math.Sqrt(va*vb)
}

// RankDescending returns feature indices sorted by decreasing score.
func RankDescending(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}
