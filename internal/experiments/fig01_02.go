package experiments

import (
	"fmt"
	"strings"

	"tunio/internal/metrics"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// Fig01Result is Figure 1: user-level parameter permutations of HPC I/O
// libraries and the full-stack products.
type Fig01Result struct {
	Libraries []params.LibraryInfo
	// HDF5MPIStack is the headline HDF5+MPI full-stack permutation count
	// (the paper reports 3.81e21).
	HDF5MPIStack float64
	// EvalSpace is the evaluation's 12-parameter space size (paper: >2.18e9).
	EvalSpace uint64
}

// Fig01 computes the permutation catalog.
func Fig01(cfg Config) *Fig01Result {
	return &Fig01Result{
		Libraries:    params.LibraryCatalog(),
		HDF5MPIStack: params.StackPermutations("HDF5", "MPI"),
		EvalSpace:    params.TotalPermutations(params.Space()),
	}
}

// String renders the figure.
func (r *Fig01Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 1: user-level parameter permutations per library\n")
	fmt.Fprintf(&b, "%-12s %9s %11s %14s\n", "library", "discrete", "continuous", "permutations")
	for _, l := range r.Libraries {
		fmt.Fprintf(&b, "%-12s %9d %11d %14.3g\n", l.Name, l.Discrete, l.Continuous, l.Permutations())
	}
	fmt.Fprintf(&b, "HDF5+MPI full-stack permutations: %.3g (paper: 3.81e21)\n", r.HDF5MPIStack)
	fmt.Fprintf(&b, "evaluation 12-parameter space:    %d (paper: >2.18e9)\n", r.EvalSpace)
	return b.String()
}

// Fig02Result is Figure 2: HSTuner tuning curves for HACC, FLASH, and
// VPIC, demonstrating the logarithmic shape that motivates early stopping.
type Fig02Result struct {
	Curves map[string]metrics.Curve
}

// Fig02 tunes the three kernels with the plain pipeline (no stopping).
func Fig02(cfg Config) (*Fig02Result, error) {
	c := cfg.componentCluster()
	out := &Fig02Result{Curves: map[string]metrics.Curve{}}
	for i, name := range []string{"hacc", "flash", "vpic"} {
		w, err := workload.ByName(name, c.Procs())
		if err != nil {
			return nil, err
		}
		res, err := tuner.Run(tuner.Config{
			Space:         params.Space(),
			PopSize:       cfg.popSize(),
			MaxIterations: cfg.maxIterations(),
			Seed:          cfg.Seed + int64(i),
		}, &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: cfg.reps(), Seed: cfg.Seed + int64(i)})
		if err != nil {
			return nil, err
		}
		out.Curves[name] = res.Curve
	}
	return out, nil
}

// LogShaped reports whether a curve gained more in its first half than its
// second (the defining property of Figure 2).
func LogShaped(c metrics.Curve) bool {
	if len(c) < 4 {
		return false
	}
	mid := len(c) / 2
	firstHalf := c[mid].BestPerf - c.Baseline()
	secondHalf := c.FinalBest() - c[mid].BestPerf
	return firstHalf > secondHalf
}

// String renders the figure.
func (r *Fig02Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 2: I/O bandwidth vs tuning iteration (HSTuner)\n")
	for _, name := range []string{"hacc", "flash", "vpic"} {
		c := r.Curves[name]
		fmt.Fprintf(&b, "%-6s baseline %-12s final %-12s speedup %.2fx  log-shaped=%v\n",
			name, fmtMBs(c.Baseline()), fmtMBs(c.FinalBest()), c.Speedup(), LogShaped(c))
		b.WriteString("       best-so-far:")
		for i, p := range c {
			if i%3 == 0 {
				fmt.Fprintf(&b, " %0.f", p.BestPerf)
			}
		}
		b.WriteString(" MB/s\n")
	}
	return b.String()
}
