package experiments

import (
	"context"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/core"
	"tunio/internal/params"
)

// The full TrainBench is benchmark-sized; what needs pinning here is the
// machinery it leans on: the interpreted (application-fidelity) sweep
// must score the identical SweepPlan run list bit-identically to the
// Go-model loop, or the headline speedup compares different work.
func TestInterpSweepMatchesModelSweep(t *testing.T) {
	c := cluster.CoriHaswell(1, 8)
	kernels := core.DefaultSweepKernels(c.Procs())
	space := params.Space()
	const seed, extraRandom = 8, 2

	direct, err := core.Sweep(context.Background(), kernels, c, space, seed, extraRandom)
	if err != nil {
		t.Fatal(err)
	}
	interp, err := interpSweep(kernels, c, space, seed, extraRandom)
	if err != nil {
		t.Fatal(err)
	}
	if len(interp.Perfs) != len(direct.Perfs) || len(direct.Perfs) == 0 {
		t.Fatalf("run counts differ: interp %d, model %d", len(interp.Perfs), len(direct.Perfs))
	}
	for i := range direct.Perfs {
		if interp.Perfs[i] != direct.Perfs[i] {
			t.Fatalf("run %d: interpreted perf %v != model perf %v", i, interp.Perfs[i], direct.Perfs[i])
		}
	}
}
