// Package experiments regenerates every table and figure of the paper's
// evaluation section (§IV) on the simulated stack. Each FigNN function
// runs the corresponding experiment and returns a typed result with the
// same rows/series the paper reports; String() renders it for terminals.
//
// Absolute numbers depend on the simulated cluster constants — the shape
// (who wins, by what factor, where crossovers fall) is what reproduces.
package experiments

import (
	"fmt"
	"sync"

	"tunio/internal/cluster"
	"tunio/internal/core"
)

// Scale selects experiment sizing.
type Scale int

// Scales.
const (
	// Smoke runs every experiment at reduced population/iteration counts
	// so the full suite finishes in about a minute of wall time.
	Smoke Scale = iota
	// Paper runs the evaluation-sized configuration (500-node BD-CATS
	// end-to-end test, 50-generation pipelines).
	Paper
)

// Config parameterizes an experiment run.
type Config struct {
	Scale Scale
	Seed  int64
}

// pipeline sizing per scale.
func (c Config) popSize() int {
	if c.Scale == Paper {
		return 16
	}
	return 8
}

func (c Config) maxIterations() int {
	if c.Scale == Paper {
		return 50
	}
	return 18
}

func (c Config) reps() int {
	if c.Scale == Paper {
		return 3
	}
	return 1
}

// endToEndIterations gives the BD-CATS pipeline a budget the larger
// machine's tuning curve converges within (the paper uses 50 generations).
func (c Config) endToEndIterations() int {
	if c.Scale == Paper {
		return 50
	}
	return 35
}

// componentCluster is the 4-node x 32-proc allocation of the paper's
// component tests.
func (c Config) componentCluster() *cluster.Cluster {
	return cluster.CoriHaswell(4, 32)
}

// endToEndCluster is the paper's 500-node end-to-end allocation (reduced
// under Smoke).
func (c Config) endToEndCluster() *cluster.Cluster {
	if c.Scale == Paper {
		return cluster.CoriHaswell(500, 4) // 2000 procs ~ paper's 1600
	}
	return cluster.CoriHaswell(64, 4)
}

// trained agents are expensive to build; cache per (seed, scale).
var (
	agentMu    sync.Mutex
	agentCache = map[int64]*core.TunIO{}
)

// Agent returns a (cached) offline-trained TunIO instance.
func Agent(cfg Config) (*core.TunIO, error) {
	agentMu.Lock()
	defer agentMu.Unlock()
	key := cfg.Seed*2 + int64(cfg.Scale)
	if a, ok := agentCache[key]; ok {
		return a, nil
	}
	tc := core.TrainConfig{Seed: cfg.Seed, StopperHorizon: cfg.endToEndIterations()}
	if cfg.Scale == Smoke {
		// lighter training for smoke runs; the sweep still runs at the
		// component-test scale so impact rankings transfer to deployment
		tc.Kernels = core.DefaultSweepKernels(cfg.componentCluster().Procs())
		tc.ExtraRandomRuns = 32
		tc.StopperEpochs = 25
		tc.PickerEpochs = 15
	}
	a, err := core.Train(tc)
	if err != nil {
		return nil, err
	}
	agentCache[key] = a
	return a, nil
}

// fmtMBs renders a bandwidth.
func fmtMBs(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.2f GB/s", v/1000)
	}
	return fmt.Sprintf("%.1f MB/s", v)
}
