package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"tunio/internal/cinterp"
	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/discovery"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// SliceVariant is one slicing strategy's measurements on one workload.
type SliceVariant struct {
	DiscoveryMs     float64 // wall time of Discover (mean of discoveryRuns)
	KernelLines     int     // marked lines kept in the kernel
	TotalLines      int     // formatted source lines
	EvalMs          float64 // wall time of one configuration evaluation
	ReplayIdentical bool    // kernel replays the app's exact I/O stream
	PeakRoTI        float64
	FinalPerf       float64 // MB/s after the tuning run
	TotalMin        float64 // simulated tuning minutes
}

// SliceRow compares the two slicing strategies on one workload.
type SliceRow struct {
	Workload  string
	Precise   SliceVariant
	Heuristic SliceVariant
}

// SliceBenchResult is the precise-vs-heuristic slicing benchmark backing
// the PreciseSlice default promotion: for every paper workload it measures
// discovery cost, kernel size, evaluation cost, replay fidelity, and the
// tuning outcome (RoTI, final perf) under both strategies.
type SliceBenchResult struct {
	Rows []SliceRow
}

// sliceWorkloads is the paper's workload set (§IV, Table III).
var sliceWorkloads = []string{"vpic", "hacc", "flash", "macsio", "bdcats"}

// discoveryRuns is how many Discover calls the wall-time average spans.
const discoveryRuns = 5

// SliceBench runs the benchmark over every paper workload.
func SliceBench(cfg Config) (*SliceBenchResult, error) {
	return sliceBench(cfg, sliceWorkloads)
}

// sliceBench runs the benchmark over the named workloads (split out so the
// unit test can cover a single one).
func sliceBench(cfg Config, names []string) (*SliceBenchResult, error) {
	c := cfg.componentCluster()
	c.Noise = 0 // replay and timing comparisons want determinism
	out := &SliceBenchResult{}
	for _, name := range names {
		w, err := workload.ByName(name, c.Procs())
		if err != nil {
			return nil, err
		}
		cw, ok := w.(workload.HasCSource)
		if !ok {
			return nil, fmt.Errorf("slicebench: %s has no C source", name)
		}
		src := cw.CSource()

		orig, err := traceOf(cfg, c, nil, src)
		if err != nil {
			return nil, fmt.Errorf("slicebench: %s original: %w", name, err)
		}

		row := SliceRow{Workload: name}
		for _, v := range []struct {
			opts discovery.Options
			dst  *SliceVariant
		}{
			{discovery.Options{}, &row.Precise},
			{discovery.Options{Heuristic: true}, &row.Heuristic},
		} {
			if err := sliceVariant(cfg, c, src, orig, v.opts, v.dst); err != nil {
				return nil, fmt.Errorf("slicebench: %s: %w", name, err)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// sliceVariant fills one variant's measurements.
func sliceVariant(cfg Config, c *cluster.Cluster, src string, orig *replay.Trace, opts discovery.Options, dst *SliceVariant) error {
	start := time.Now()
	var k *discovery.Kernel
	var err error
	for i := 0; i < discoveryRuns; i++ {
		k, err = discovery.Discover(src, opts)
		if err != nil {
			return err
		}
	}
	dst.DiscoveryMs = float64(time.Since(start).Microseconds()) / 1000 / discoveryRuns
	dst.KernelLines = len(k.MarkedLines)
	dst.TotalLines = k.TotalLines

	trace, err := traceOf(cfg, c, k.File, "")
	if err != nil {
		return err
	}
	dst.ReplayIdentical = reflect.DeepEqual(orig.Events, trace.Events)

	eval := &tuner.CSourceEvaluator{Prog: k.File, Cluster: c, Reps: cfg.reps(), Seed: cfg.Seed + 300}
	start = time.Now()
	if _, _, err := eval.Evaluate(params.DefaultAssignment(params.Space()), 0); err != nil {
		return err
	}
	dst.EvalMs = float64(time.Since(start).Microseconds()) / 1000

	res, err := tuner.Run(tuner.Config{
		Space:         params.Space(),
		PopSize:       cfg.popSize(),
		MaxIterations: cfg.maxIterations(),
		Seed:          cfg.Seed + 300, // same trajectory for both variants
	}, eval)
	if err != nil {
		return err
	}
	dst.PeakRoTI, _, _ = res.Curve.PeakRoTI()
	dst.FinalPerf = res.Curve.FinalBest()
	dst.TotalMin = res.Curve.TotalMinutes()
	return nil
}

// traceOf records the I/O request stream of prog (or of source text when
// prog is nil) on a fresh default-configured stack.
func traceOf(cfg Config, c *cluster.Cluster, prog *csrc.File, src string) (*replay.Trace, error) {
	if prog == nil {
		p, err := csrc.Parse(src)
		if err != nil {
			return nil, err
		}
		prog = p
	}
	st, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), cfg.Seed+77)
	if err != nil {
		return nil, err
	}
	rec := replay.NewRecorder(c.Procs())
	detach := rec.Attach(st.Lib)
	defer detach()
	if _, err := cinterp.Run(prog, st.Lib); err != nil {
		return nil, err
	}
	return rec.Trace(), nil
}

// String renders the benchmark table and the promotion verdict.
func (r *SliceBenchResult) String() string {
	var b strings.Builder
	b.WriteString("Slice benchmark: precise (CFG def-use) vs heuristic (line marking) kernels\n")
	fmt.Fprintf(&b, "%-8s %-10s %12s %8s %10s %8s %10s %12s\n",
		"workload", "variant", "discover ms", "lines", "eval ms", "replay", "peak RoTI", "final perf")
	preciseWins, heuristicWins := 0, 0
	for _, row := range r.Rows {
		for _, v := range []struct {
			name string
			sv   SliceVariant
		}{{"precise", row.Precise}, {"heuristic", row.Heuristic}} {
			fmt.Fprintf(&b, "%-8s %-10s %12.2f %8d %10.1f %8v %10.2f %12s\n",
				row.Workload, v.name, v.sv.DiscoveryMs, v.sv.KernelLines,
				v.sv.EvalMs, v.sv.ReplayIdentical, v.sv.PeakRoTI, fmtMBs(v.sv.FinalPerf))
		}
		if row.Precise.KernelLines <= row.Heuristic.KernelLines && row.Precise.ReplayIdentical {
			preciseWins++
		}
		if row.Heuristic.KernelLines < row.Precise.KernelLines && row.Heuristic.ReplayIdentical {
			heuristicWins++
		}
	}
	fmt.Fprintf(&b, "precise kernels no larger and replay-identical on %d/%d workloads (heuristic smaller on %d)\n",
		preciseWins, len(r.Rows), heuristicWins)
	return b.String()
}
