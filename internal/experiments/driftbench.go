package experiments

import (
	"context"
	"fmt"
	"strings"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// DriftRow is one workload's online-adaptation outcome under the
// benchmark's degradation schedule.
type DriftRow struct {
	Workload string `json:"workload"`

	// Adaptation: re-tunes fired, detection delay (deviant windows before
	// triggering), windows and simulated seconds from the regime change
	// to the first re-tuned service window.
	Retunes        int     `json:"retunes"`
	DetectWindows  int     `json:"detect_windows"`
	ReadaptWindows int     `json:"readapt_windows"`
	ReadaptSeconds float64 `json:"readapt_s"`

	// Quality: post-re-tune bandwidth as a fraction of the zero-delay
	// oracle's, and the mean regret vs the oracle across the drifted
	// half of the run.
	RecoveryPct float64 `json:"recovery_pct"`
	RegretPct   float64 `json:"regret_pct"`

	// Pruning: evaluated simulated stage time without and with
	// SHAMan-style mid-replay pruning, the saving, and whether the two
	// runs' window curves are bit-identical (they must be).
	EvalSeconds       float64 `json:"eval_s"`
	PrunedEvalSeconds float64 `json:"pruned_eval_s"`
	PrunedEvals       int     `json:"pruned_evals"`
	SavingsPct        float64 `json:"savings_pct"`
	Identical         bool    `json:"identical"`
}

// DriftBenchResult is the online re-tuning benchmark: every paper
// workload serves windows across a machine that degrades mid-run
// (background load on NIC and OSTs plus amplified contention), and the
// drift controller must notice, re-tune, and re-approach the zero-delay
// oracle — while pruning cuts the evaluation bill without changing a
// single window.
type DriftBenchResult struct {
	Windows     int        `json:"windows"`
	RegimeStart float64    `json:"regime_start_s"`
	Rows        []DriftRow `json:"workloads"`
}

// driftBenchSchedule is the benchmark's machine: nominal until
// RegimeStart, then half OST bandwidth, 30% NIC load, and tripled
// contention sensitivity — roughly a 2x bandwidth hit for I/O-bound
// phases.
func driftBenchSchedule(start float64) *cluster.Drift {
	return &cluster.Drift{Seed: 9, Regimes: []cluster.Regime{
		{Start: start, OSTLoad: 0.5, NICLoad: 0.3, Contention: 3},
	}}
}

// DriftBench runs the benchmark over every paper workload.
func DriftBench(cfg Config) (*DriftBenchResult, error) {
	return driftBench(cfg, sliceWorkloads)
}

func driftBench(cfg Config, names []string) (*DriftBenchResult, error) {
	const regimeStart = 45.0
	windows := 14
	if cfg.Scale == Paper {
		windows = 30
	}
	out := &DriftBenchResult{Windows: windows, RegimeStart: regimeStart}
	c := cfg.componentCluster()
	c.Drift = driftBenchSchedule(regimeStart)

	for _, name := range names {
		w, err := workload.ByName(name, c.Procs())
		if err != nil {
			return nil, err
		}
		st, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		trace, err := replay.Record(w, st)
		if err != nil {
			return nil, fmt.Errorf("driftbench: %s: %w", name, err)
		}
		dcfg := tuner.DriftConfig{
			Space:      params.Space(),
			Cluster:    c,
			Trace:      trace,
			Seed:       cfg.Seed + 600,
			Windows:    windows,
			WindowGap:  10,
			Neighbors:  6,
			Rounds:     2,
			InitRounds: 3,
			Oracle:     true,
		}
		plain, err := tuner.RunDrift(context.Background(), dcfg)
		if err != nil {
			return nil, fmt.Errorf("driftbench: %s: %w", name, err)
		}
		dcfg.Prune = true
		pruned, err := tuner.RunDrift(context.Background(), dcfg)
		if err != nil {
			return nil, fmt.Errorf("driftbench: %s (pruned): %w", name, err)
		}

		row := DriftRow{
			Workload:          name,
			Retunes:           len(plain.Retunes),
			EvalSeconds:       plain.EvalSimSeconds,
			PrunedEvalSeconds: pruned.EvalSimSeconds,
			PrunedEvals:       pruned.PrunedEvals,
			Identical:         sameWindows(plain.Windows, pruned.Windows) && sameGenome(plain.FinalGenome, pruned.FinalGenome),
		}
		if plain.EvalSimSeconds > 0 {
			row.SavingsPct = 100 * (1 - pruned.EvalSimSeconds/plain.EvalSimSeconds)
		}
		fillAdaptation(&row, plain, regimeStart)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// fillAdaptation derives the time-to-readapt and regret metrics from
// the window series and re-tune log.
func fillAdaptation(row *DriftRow, res *tuner.DriftResult, regimeStart float64) {
	drifted := -1 // first window served in the degraded regime
	for _, w := range res.Windows {
		if w.Regime >= 0 {
			drifted = w.Window
			break
		}
	}
	if len(res.Retunes) > 0 {
		row.DetectWindows = res.Retunes[0].DetectWindows
	}
	readapted := -1 // first post-re-tune window
	if len(res.Retunes) > 0 {
		for _, w := range res.Windows {
			if w.Window > res.Retunes[0].Window && w.Retuned {
				readapted = w.Window
				break
			}
		}
	}
	if drifted >= 0 && readapted >= 0 {
		row.ReadaptWindows = readapted - drifted
		row.ReadaptSeconds = res.Windows[readapted].Start - regimeStart
	}

	var got, oracle, regret float64
	var n int
	if readapted >= 0 {
		for _, w := range res.Windows[readapted:] {
			got += w.PerfMBs
			oracle += w.OraclePerfMBs
		}
		if oracle > 0 {
			row.RecoveryPct = 100 * got / oracle
		}
	}
	if drifted >= 0 {
		for _, w := range res.Windows[drifted:] {
			if w.OraclePerfMBs > 0 {
				regret += (w.OraclePerfMBs - w.PerfMBs) / w.OraclePerfMBs
				n++
			}
		}
		if n > 0 {
			row.RegretPct = 100 * regret / float64(n)
		}
	}
}

func sameWindows(a, b []tuner.WindowPoint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameGenome(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the benchmark table.
func (r *DriftBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online re-tuning under drift: degradation at t=%.0fs, %d service windows\n",
		r.RegimeStart, r.Windows)
	fmt.Fprintf(&b, "%-8s %8s %8s %9s %10s %10s %9s %11s %11s %9s %6s\n",
		"workload", "retunes", "detect", "readapt", "readapt s", "recovery", "regret",
		"eval s", "pruned s", "saved", "ident")
	recovered, saved := 0, 0
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %8d %8d %9d %10.0f %9.0f%% %8.1f%% %11.1f %11.1f %8.0f%% %6v\n",
			row.Workload, row.Retunes, row.DetectWindows, row.ReadaptWindows, row.ReadaptSeconds,
			row.RecoveryPct, row.RegretPct, row.EvalSeconds, row.PrunedEvalSeconds,
			row.SavingsPct, row.Identical)
		if row.RecoveryPct >= 80 {
			recovered++
		}
		if row.SavingsPct >= 25 && row.Identical {
			saved++
		}
	}
	fmt.Fprintf(&b, "recovered >= 80%% of oracle bandwidth after re-tuning on %d/%d workloads\n",
		recovered, len(r.Rows))
	fmt.Fprintf(&b, "pruning saved >= 25%% of evaluated stage time with bit-identical curves on %d/%d workloads\n",
		saved, len(r.Rows))
	return b.String()
}
