package experiments

import (
	"fmt"
	"strings"

	"tunio/internal/cinterp"
	"tunio/internal/csrc"
	"tunio/internal/darshan"
	"tunio/internal/discovery"
	"tunio/internal/metrics"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// Fig05Result is Figure 5: the marking process on a VPIC-style source.
type Fig05Result struct {
	TotalLines  int
	MarkedLines []int
	Kernel      string
}

// Fig05 runs Application I/O Discovery on the VPIC source and reports the
// per-line marking. It pins the heuristic per-line fixpoint marking: that
// is the algorithm §III-B of the paper illustrates, and the figure's
// kept-line shape is defined by it (precise slicing, the library default,
// keeps a different — smaller — line set).
func Fig05(cfg Config) (*Fig05Result, error) {
	v := workload.NewVPIC(cfg.componentCluster().Procs())
	k, err := discovery.Discover(v.CSource(), discovery.Options{Heuristic: true})
	if err != nil {
		return nil, err
	}
	return &Fig05Result{
		TotalLines:  k.TotalLines,
		MarkedLines: k.MarkedLines,
		Kernel:      k.Source,
	}, nil
}

// String renders the figure.
func (r *Fig05Result) String() string {
	return fmt.Sprintf("Figure 5: marking kept %d of %d formatted lines (%.0f%%)\n",
		len(r.MarkedLines), r.TotalLines, 100*float64(len(r.MarkedLines))/float64(r.TotalLines))
}

// Fig08Variant is one I/O-discovery tuning variant of Figure 8.
type Fig08Variant struct {
	Name        string
	Curve       metrics.Curve
	PeakRoTI    float64
	PeakAtMin   float64
	FinalPerf   float64
	TotalMin    float64
	LoopScale   float64
	KernelLines int
}

// Fig08Result covers Figures 8(a) and 8(b): Return on Tuning Investment
// with and without Application I/O Discovery, and with loop reduction.
type Fig08Result struct {
	FullApp Fig08Variant
	Kernel  Fig08Variant
	Reduced Fig08Variant
}

// Fig08 tunes MACSio (compute ratio baselined on VPIC Dipole) three ways:
// the full application, its discovered I/O kernel, and the kernel with 1%
// loop reduction — all through the C-source evaluation path.
func Fig08(cfg Config) (*Fig08Result, error) {
	c := cfg.componentCluster()
	m := workload.NewMACSio(c.Procs())
	src := m.CSource()

	fullProg, err := csrc.Parse(src)
	if err != nil {
		return nil, err
	}
	kernel, err := discovery.Discover(src, discovery.Options{})
	if err != nil {
		return nil, err
	}
	reduced, err := discovery.Discover(src, discovery.Options{LoopReduction: 0.01})
	if err != nil {
		return nil, err
	}

	out := &Fig08Result{}
	for i, v := range []struct {
		name  string
		prog  *csrc.File
		scale float64
		lines int
		dst   *Fig08Variant
	}{
		{"full application", fullProg, 1, 0, &out.FullApp},
		{"I/O kernel", kernel.File, kernel.LoopScale, len(kernel.MarkedLines), &out.Kernel},
		{"kernel + loop reduction (1%)", reduced.File, reduced.LoopScale, len(reduced.MarkedLines), &out.Reduced},
	} {
		res, err := tuner.Run(tuner.Config{
			Space:         params.Space(),
			PopSize:       cfg.popSize(),
			MaxIterations: cfg.maxIterations(),
			Seed:          cfg.Seed + 100, // same seed: identical search trajectory
		}, &tuner.CSourceEvaluator{Prog: v.prog, Cluster: c, Reps: cfg.reps(), Seed: cfg.Seed + int64(i)})
		if err != nil {
			return nil, fmt.Errorf("fig08 %s: %w", v.name, err)
		}
		peak, at, _ := res.Curve.PeakRoTI()
		*v.dst = Fig08Variant{
			Name:        v.name,
			Curve:       res.Curve,
			PeakRoTI:    peak,
			PeakAtMin:   at,
			FinalPerf:   res.Curve.FinalBest(),
			TotalMin:    res.Curve.TotalMinutes(),
			LoopScale:   v.scale,
			KernelLines: v.lines,
		}
	}
	return out, nil
}

// String renders figures 8(a) and 8(b).
func (r *Fig08Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8(a,b): Return on Tuning Investment with I/O Discovery\n")
	fmt.Fprintf(&b, "%-30s %10s %14s %12s %12s\n", "variant", "peak RoTI", "peak at (min)", "total (min)", "final perf")
	for _, v := range []Fig08Variant{r.FullApp, r.Kernel, r.Reduced} {
		fmt.Fprintf(&b, "%-30s %10.2f %14.1f %12.1f %12s\n",
			v.Name, v.PeakRoTI, v.PeakAtMin, v.TotalMin, fmtMBs(v.FinalPerf))
	}
	fmt.Fprintf(&b, "kernel peak-RoTI gain over full app: %.2fx (paper: 2.87 vs 2.47)\n",
		r.Kernel.PeakRoTI/r.FullApp.PeakRoTI)
	fmt.Fprintf(&b, "loop-reduction peak-RoTI gain:       %.2fx (paper: 23.30 vs 2.47, >9x)\n",
		r.Reduced.PeakRoTI/r.FullApp.PeakRoTI)
	fmt.Fprintf(&b, "time-to-peak reduction (kernel):     %.0f%% (paper: 14%%)\n",
		100*(1-r.Kernel.PeakAtMin/r.FullApp.PeakAtMin))
	return b.String()
}

// Fig08cResult is Figure 8(c): similarity of the generated kernels' I/O
// footprint to the original application.
type Fig08cResult struct {
	AppBytes, KernelBytes, ReducedBytes float64 // reduced scaled by LoopScale
	AppOps, KernelOps, ReducedOps       float64
	BytesErrKernel, BytesErrReduced     float64 // absolute % error
	OpsErrKernel, OpsErrReduced         float64
}

// Fig08c runs the full app, its kernel, and the loop-reduced kernel once
// each and compares darshan footprints (the reduced kernel's counters are
// multiplied by the loop scale before comparison, as in the paper).
func Fig08c(cfg Config) (*Fig08cResult, error) {
	c := cfg.componentCluster()
	m := workload.NewMACSio(c.Procs())
	src := m.CSource()
	settings := params.DefaultAssignment(params.Space()).Settings()

	// run returns the app counters and the actual loop scale of the run.
	run := func(prog *csrc.File) (*darshan.LayerCounters, float64, error) {
		st, err := workload.BuildStack(c, settings, cfg.Seed+55)
		if err != nil {
			return nil, 1, err
		}
		res, err := cinterp.Run(prog, st.Lib)
		if err != nil {
			return nil, 1, err
		}
		return st.Sim.Report.App(), res.LoopScale, nil
	}

	fullProg, err := csrc.Parse(src)
	if err != nil {
		return nil, err
	}
	kernel, err := discovery.Discover(src, discovery.Options{})
	if err != nil {
		return nil, err
	}
	reduced, err := discovery.Discover(src, discovery.Options{LoopReduction: 0.01})
	if err != nil {
		return nil, err
	}

	app, _, err := run(fullProg)
	if err != nil {
		return nil, err
	}
	kApp, kScale, err := run(kernel.File)
	if err != nil {
		return nil, err
	}
	rApp, rScale, err := run(reduced.File)
	if err != nil {
		return nil, err
	}

	out := &Fig08cResult{
		AppBytes:     float64(app.BytesWritten),
		KernelBytes:  float64(kApp.BytesWritten) * kScale,
		ReducedBytes: float64(rApp.BytesWritten) * rScale,
		AppOps:       float64(app.WriteOps),
		KernelOps:    float64(kApp.WriteOps) * kScale,
		ReducedOps:   float64(rApp.WriteOps) * rScale,
	}
	out.BytesErrKernel = darshan.PercentError(out.KernelBytes, out.AppBytes)
	out.BytesErrReduced = darshan.PercentError(out.ReducedBytes, out.AppBytes)
	out.OpsErrKernel = darshan.PercentError(out.KernelOps, out.AppOps)
	out.OpsErrReduced = darshan.PercentError(out.ReducedOps, out.AppOps)
	return out, nil
}

// String renders figure 8(c).
func (r *Fig08cResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 8(c): kernel I/O footprint vs original application\n")
	fmt.Fprintf(&b, "%-18s %16s %14s\n", "metric", "kernel err", "reduced err")
	fmt.Fprintf(&b, "%-18s %15.3f%% %13.3f%%  (paper: 0.0002%% / 0.19%%)\n",
		"bytes written", r.BytesErrKernel, r.BytesErrReduced)
	fmt.Fprintf(&b, "%-18s %15.3f%% %13.3f%%  (paper: 19.05%% / 4.87%%)\n",
		"write operations", r.OpsErrKernel, r.OpsErrReduced)
	return b.String()
}
