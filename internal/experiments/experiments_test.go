package experiments

import (
	"math"
	"strings"
	"testing"
)

var smoke = Config{Scale: Smoke, Seed: 7}

func TestFig01(t *testing.T) {
	r := Fig01(smoke)
	if len(r.Libraries) != 6 {
		t.Fatalf("libraries = %d", len(r.Libraries))
	}
	if r.EvalSpace <= 2_180_000_000 {
		t.Fatalf("eval space %d too small", r.EvalSpace)
	}
	// paper: HDF5+MPI on the order of 1e21
	if lg := math.Log10(r.HDF5MPIStack); lg < 20 || lg > 23 {
		t.Fatalf("HDF5+MPI permutations = %g", r.HDF5MPIStack)
	}
	if !strings.Contains(r.String(), "HDF5") {
		t.Fatal("render missing content")
	}
}

func TestFig02LogShape(t *testing.T) {
	r, err := Fig02(smoke)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hacc", "flash", "vpic"} {
		c, ok := r.Curves[name]
		if !ok {
			t.Fatalf("missing curve %s", name)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Speedup() < 1.5 {
			t.Fatalf("%s: tuning speedup %.2fx too small", name, c.Speedup())
		}
		if !LogShaped(c) {
			t.Errorf("%s: curve is not log-shaped (first-half gains should dominate)", name)
		}
	}
	_ = r.String()
}

func TestFig05(t *testing.T) {
	r, err := Fig05(smoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MarkedLines) == 0 || r.TotalLines == 0 {
		t.Fatal("no marking data")
	}
	frac := float64(len(r.MarkedLines)) / float64(r.TotalLines)
	if frac >= 0.95 {
		t.Fatalf("marking kept %.0f%% of lines; no reduction", frac*100)
	}
	if !strings.Contains(r.Kernel, "H5Dwrite") {
		t.Fatal("kernel lost its I/O")
	}
	_ = r.String()
}

func TestFig08Shapes(t *testing.T) {
	r, err := Fig08(smoke)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: kernel RoTI > full-app RoTI; loop reduction >> both.
	if r.Kernel.PeakRoTI <= r.FullApp.PeakRoTI {
		t.Errorf("kernel peak RoTI %.2f not above full app %.2f", r.Kernel.PeakRoTI, r.FullApp.PeakRoTI)
	}
	if r.Reduced.PeakRoTI <= 2*r.FullApp.PeakRoTI {
		t.Errorf("loop reduction peak RoTI %.2f not >2x full app %.2f (paper: >9x)",
			r.Reduced.PeakRoTI, r.FullApp.PeakRoTI)
	}
	if r.Kernel.TotalMin >= r.FullApp.TotalMin {
		t.Errorf("kernel tuning time %.1f not below full app %.1f", r.Kernel.TotalMin, r.FullApp.TotalMin)
	}
	_ = r.String()
}

func TestFig08cSimilarity(t *testing.T) {
	r, err := Fig08c(smoke)
	if err != nil {
		t.Fatal(err)
	}
	// bytes written: both kernels should be within a few percent
	if r.BytesErrKernel > 1 {
		t.Errorf("kernel bytes error %.3f%% (paper: 0.0002%%)", r.BytesErrKernel)
	}
	if r.BytesErrReduced > 5 {
		t.Errorf("reduced bytes error %.3f%% (paper: 0.19%%)", r.BytesErrReduced)
	}
	// op counts may deviate more (paper: 19.05% / 4.87%)
	if r.OpsErrKernel > 30 || r.OpsErrReduced > 30 {
		t.Errorf("ops errors %.1f%% / %.1f%% too large", r.OpsErrKernel, r.OpsErrReduced)
	}
	_ = r.String()
}

func TestSliceBenchSingleWorkload(t *testing.T) {
	r, err := sliceBench(smoke, []string{"vpic"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	row := r.Rows[0]
	for _, v := range []struct {
		name string
		sv   SliceVariant
	}{{"precise", row.Precise}, {"heuristic", row.Heuristic}} {
		if !v.sv.ReplayIdentical {
			t.Errorf("%s kernel does not replay the application's I/O stream", v.name)
		}
		if v.sv.KernelLines == 0 || v.sv.TotalLines == 0 {
			t.Errorf("%s: missing kernel size data", v.name)
		}
		if v.sv.DiscoveryMs <= 0 || v.sv.EvalMs <= 0 {
			t.Errorf("%s: missing timing data", v.name)
		}
		if v.sv.FinalPerf <= 0 || v.sv.PeakRoTI <= 0 {
			t.Errorf("%s: tuning produced no improvement data", v.name)
		}
	}
	// The promotion premise: the precise kernel is no larger than the
	// heuristic one while staying replay-identical.
	if row.Precise.KernelLines > row.Heuristic.KernelLines {
		t.Errorf("precise kernel (%d lines) larger than heuristic (%d)",
			row.Precise.KernelLines, row.Heuristic.KernelLines)
	}
	_ = r.String()
}

func TestEvalBenchSingleWorkload(t *testing.T) {
	r, err := evalBench(smoke, []string{"vpic"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Population != evalPopulation {
		t.Fatalf("rows = %d, population = %d", len(r.Rows), r.Population)
	}
	row := r.Rows[0]
	if !row.Identical {
		t.Errorf("trace replay scored the population differently from direct interpretation")
	}
	if row.Direct.NsPerGenome <= 0 || row.Traced.NsPerGenome <= 0 || row.Speedup <= 0 {
		t.Errorf("missing timing data: %+v", row)
	}
	// 32 random genomes over a 12-parameter space must collide in at least
	// one stage projection; a zero hit rate means the cache is keyed wrong.
	if row.PlanHitRate == 0 && row.WireHitRate == 0 {
		t.Errorf("stage cache never hit over the population: %+v", row)
	}
	_ = r.String()
}

func TestFig09ImpactFirst(t *testing.T) {
	r, err := Fig09(smoke)
	if err != nil {
		t.Fatal(err)
	}
	if r.IterWith < 0 {
		t.Fatal("impact-first run never reached the target")
	}
	if r.IterWithout >= 0 && r.IterWith > r.IterWithout {
		t.Errorf("impact-first took %d iterations vs %d without (paper: 6 vs 43)",
			r.IterWith, r.IterWithout)
	}
	if n := len(r.ChangedParams); n == 0 || n == 12 {
		t.Errorf("changed parameters = %d, want a proper subset (paper: 7)", n)
	}
	_ = r.String()
}

func TestFig10StoppingPolicies(t *testing.T) {
	r, err := Fig10(smoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 4 {
		t.Fatalf("policies = %d", len(r.Policies))
	}
	tun := r.Policy("TunIO RL stopping")
	heur := r.Policy("Heuristic (5%/5 iters)")
	if tun.Name == "" || heur.Name == "" {
		t.Fatal("policy rows missing")
	}
	// Paper shape: TunIO captures a high share of the best RoTI...
	if tun.PctOfBest < 50 {
		t.Errorf("TunIO RoTI share %.1f%% (paper: 90.5%%)", tun.PctOfBest)
	}
	// ...and at least matches the heuristic's captured bandwidth.
	if tun.Bandwidth < heur.Bandwidth {
		t.Errorf("TunIO stopped at %s below heuristic %s (paper: 2.2 vs 1.2 GB/s)",
			fmtMBs(tun.Bandwidth), fmtMBs(heur.Bandwidth))
	}
	if r.SpeedupAtTunIOStop < 2 {
		t.Errorf("speedup at stop %.1fx (paper: ~4x)", r.SpeedupAtTunIOStop)
	}
	_ = r.String()
}

func TestFig11EndToEnd(t *testing.T) {
	r, err := Fig11(smoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 6 {
		t.Fatalf("variants = %d", len(r.Variants))
	}
	noStop := r.Variant("HSTuner, no stop")
	tun := r.Variant("TunIO")
	tunK := r.Variant("TunIO + I/O kernel")
	if noStop == nil || tun == nil || tunK == nil {
		t.Fatal("variant rows missing")
	}
	// Paper shapes: TunIO stops well before the full budget and spends
	// less tuning time than no-stop...
	if r.TimeReductionPct < 15 {
		t.Errorf("time reduction %.0f%% (paper: ~73%%; simulated evaluations get cheaper as configs improve, so expect less)", r.TimeReductionPct)
	}
	if r.IterationReductionPct < 30 {
		t.Errorf("iteration reduction %.0f%% (paper: ~73%%)", r.IterationReductionPct)
	}
	// ...while reaching comparable bandwidth (>= 80% of the full search).
	if tun.BestPerf < 0.8*noStop.BestPerf {
		t.Errorf("TunIO bandwidth %s below 80%% of no-stop %s",
			fmtMBs(tun.BestPerf), fmtMBs(noStop.BestPerf))
	}
	// RoTI ordering: TunIO beats the heuristic baseline; kernel helps.
	if r.RoTIGain <= 0 {
		t.Errorf("TunIO RoTI gain %.1f not positive (paper: 173.4)", r.RoTIGain)
	}
	kNoStop := r.Variant("HSTuner + I/O kernel, no stop")
	if kNoStop.Minutes >= noStop.Minutes {
		t.Errorf("kernel evaluation (%.1f min) not cheaper than full app (%.1f min)", kNoStop.Minutes, noStop.Minutes)
	}
	_ = r.String()
}

func TestFig12Lifecycle(t *testing.T) {
	fig11, err := Fig11(smoke)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fig12(smoke, fig11)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(r.ViabilityTunIO, 1) {
		t.Fatal("TunIO tuning never becomes viable")
	}
	// Paper shape: TunIO's viability point comes earlier than HSTuner's.
	if !math.IsInf(r.ViabilityHSTuner, 1) && r.ViabilityTunIO >= r.ViabilityHSTuner {
		t.Errorf("viability %0.f not before HSTuner %0.f (paper: 1394 vs 5274)",
			r.ViabilityTunIO, r.ViabilityHSTuner)
	}
	_ = r.String()
}
