package experiments

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"tunio/internal/cinterp"
	"tunio/internal/cluster"
	"tunio/internal/core"
	"tunio/internal/csrc"
	"tunio/internal/params"
	"tunio/internal/train"
	"tunio/internal/workload"
)

// TrainBenchResult benchmarks the rebuilt offline-training pipeline. The
// sweep comparison follows the BENCH_eval convention from the evaluation-
// engine benchmark: "direct" is scoring each configuration at application
// fidelity — interpreting the kernel's C source SPMD on a fresh stack per
// run, the cost the paper's offline phase pays on a real application —
// while replay records each kernel once and replays cached stage
// artifacts. Both are run over the identical core.SweepPlan run list with
// identical per-run seeds, so the equivalence checks (bit-identical
// perfs, PCA impact scores within 1e-9) are exact, not statistical. The
// historical model-direct loop (core.Sweep, the pre-pipeline Go-model
// shortcut) is timed alongside for reference; its perfs are bit-identical
// to the interpreted sweep's, pinned by workload's conformance tests and
// re-checked here.
type TrainBenchResult struct {
	Kernels   []string `json:"kernels"`
	SweepRuns int      `json:"sweep_runs"`
	Workers   int      `json:"workers"`

	DirectSweepSeconds         float64 `json:"direct_sweep_seconds"`        // interpret C source per config (serial)
	ModelSweepSeconds          float64 `json:"model_sweep_seconds"`         // historical core.Sweep Go-model loop (serial)
	ReplaySweepSerialSeconds   float64 `json:"replay_sweep_serial_seconds"` // recording included
	ReplaySweepParallelSeconds float64 `json:"replay_sweep_parallel_seconds"`
	// PerConfigSpeedup is the per-configuration win of serial replay over
	// serial direct (application-fidelity) execution, recording included.
	PerConfigSpeedup float64 `json:"per_config_speedup"`

	// Equivalence of the sweeps over the identical run list.
	PerfsIdentical   bool    `json:"perfs_identical"`
	ImpactMaxAbsDiff float64 `json:"impact_max_abs_diff"`

	FullRetrainSeconds float64 `json:"full_retrain_seconds"`
	ResumeSeconds      float64 `json:"resume_seconds"`
}

// TrainBench runs the training-pipeline benchmark at the paper's
// component-test scale (4x32 Cori Haswell, the three default sweep
// kernels, 20 extra random runs).
func TrainBench(cfg Config) (*TrainBenchResult, error) {
	c := cfg.componentCluster()
	kernels := core.DefaultSweepKernels(c.Procs())
	const extraRandom = 20
	base := train.Config{
		Cluster:         c,
		Kernels:         kernels,
		ExtraRandomRuns: extraRandom,
		Seed:            cfg.Seed,
	}
	out := &TrainBenchResult{Workers: runtime.GOMAXPROCS(0)}
	for _, w := range kernels {
		out.Kernels = append(out.Kernels, w.Name())
	}
	ctx := context.Background()
	space := params.Space()

	// Direct sweep at application fidelity: interpret each kernel's C
	// source once per planned configuration.
	start := time.Now()
	direct, err := interpSweep(kernels, c, space, cfg.Seed+1, extraRandom)
	if err != nil {
		return nil, fmt.Errorf("trainbench: direct sweep: %w", err)
	}
	out.DirectSweepSeconds = time.Since(start).Seconds()
	out.SweepRuns = len(direct.Perfs)

	// Historical model-direct loop for reference.
	start = time.Now()
	model, err := core.Sweep(ctx, kernels, c, space, cfg.Seed+1, extraRandom)
	if err != nil {
		return nil, fmt.Errorf("trainbench: model sweep: %w", err)
	}
	out.ModelSweepSeconds = time.Since(start).Seconds()

	// Replay-backed sweep, serial: same plan, one worker, recording cost
	// included — the per-configuration comparison at equal parallelism.
	serial := base
	serial.Workers = 1
	serial.Until = train.StageSweep
	start = time.Now()
	serialRes, err := train.Run(ctx, serial)
	if err != nil {
		return nil, fmt.Errorf("trainbench: replay sweep (serial): %w", err)
	}
	out.ReplaySweepSerialSeconds = time.Since(start).Seconds()
	if out.ReplaySweepSerialSeconds > 0 {
		out.PerConfigSpeedup = out.DirectSweepSeconds / out.ReplaySweepSerialSeconds
	}

	// Equivalence: all three sweeps bit-identical per run, PCA impact
	// scores within 1e-9.
	out.PerfsIdentical = len(serialRes.Sweep.Perfs) == len(direct.Perfs)
	if out.PerfsIdentical {
		for i := range direct.Perfs {
			if serialRes.Sweep.Perfs[i] != direct.Perfs[i] || model.Perfs[i] != direct.Perfs[i] {
				out.PerfsIdentical = false
				break
			}
		}
	}
	ds, err := direct.ImpactScores()
	if err != nil {
		return nil, err
	}
	rs, err := serialRes.Sweep.ImpactScores()
	if err != nil {
		return nil, err
	}
	for i := range ds {
		if d := math.Abs(ds[i] - rs[i]); d > out.ImpactMaxAbsDiff {
			out.ImpactMaxAbsDiff = d
		}
	}

	// Replay-backed sweep at full parallelism (what tuniotrain runs).
	parallel := base
	parallel.Until = train.StageSweep
	start = time.Now()
	if _, err := train.Run(ctx, parallel); err != nil {
		return nil, fmt.Errorf("trainbench: replay sweep (parallel): %w", err)
	}
	out.ReplaySweepParallelSeconds = time.Since(start).Seconds()

	// Full from-scratch pipeline with artifacts, then an artifact resume.
	dir, err := os.MkdirTemp("", "tunio-trainbench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	full := base
	full.ArtifactsDir = dir
	start = time.Now()
	if _, err := train.Run(ctx, full); err != nil {
		return nil, fmt.Errorf("trainbench: full retrain: %w", err)
	}
	out.FullRetrainSeconds = time.Since(start).Seconds()

	full.Resume = true
	start = time.Now()
	if _, err := train.Run(ctx, full); err != nil {
		return nil, fmt.Errorf("trainbench: resume: %w", err)
	}
	out.ResumeSeconds = time.Since(start).Seconds()
	return out, nil
}

// interpSweep scores core.SweepPlan's run list by interpreting each
// kernel's C source per configuration — the application-fidelity direct
// path. Per-run perfs are bit-identical to core.Sweep's Go-model loop
// (the workloads' C forms are conformance-tested) and to the replay
// sweep.
func interpSweep(kernels []workload.Workload, c *cluster.Cluster, space []params.Parameter, seed int64, extraRandom int) (*core.SweepResult, error) {
	runs, err := core.SweepPlan(len(kernels), space, seed, extraRandom)
	if err != nil {
		return nil, err
	}
	progs := make([]*csrc.File, len(kernels))
	for i, w := range kernels {
		cw, ok := w.(workload.HasCSource)
		if !ok {
			return nil, fmt.Errorf("%s has no C source", w.Name())
		}
		if progs[i], err = csrc.Parse(cw.CSource()); err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name(), err)
		}
	}
	out := &core.SweepResult{
		Space:    space,
		Features: make([][]float64, len(runs)),
		Perfs:    make([]float64, len(runs)),
	}
	for i, r := range runs {
		out.Features[i] = r.Assignment.Features()
		st, err := workload.BuildStack(c, r.Assignment.Settings(), r.Seed)
		if err != nil {
			return nil, err
		}
		if _, err := cinterp.Run(progs[r.Kernel], st.Lib); err != nil {
			return nil, fmt.Errorf("run %d (%s): %w", i, kernels[r.Kernel].Name(), err)
		}
		out.Perfs[i], _ = workload.Perf(st.Sim.Report)
	}
	return out, nil
}

// String renders the benchmark.
func (r *TrainBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Offline training pipeline: direct execution vs staged replay (%s; %d sweep runs)\n",
		strings.Join(r.Kernels, "+"), r.SweepRuns)
	fmt.Fprintf(&b, "  direct sweep (interpret kernel/config): %8.2fs\n", r.DirectSweepSeconds)
	fmt.Fprintf(&b, "  model sweep (historical Go-model loop): %8.2fs\n", r.ModelSweepSeconds)
	fmt.Fprintf(&b, "  replay sweep (serial, recording incl.): %8.2fs   %.1fx per config\n",
		r.ReplaySweepSerialSeconds, r.PerConfigSpeedup)
	fmt.Fprintf(&b, "  replay sweep (%2d workers):              %8.2fs\n", r.Workers, r.ReplaySweepParallelSeconds)
	fmt.Fprintf(&b, "  full retrain:                           %8.2fs   resume from artifacts: %.3fs\n",
		r.FullRetrainSeconds, r.ResumeSeconds)
	fmt.Fprintf(&b, "  perfs identical across all three sweeps: %v, impact max |diff| = %.2g\n",
		r.PerfsIdentical, r.ImpactMaxAbsDiff)
	return b.String()
}
