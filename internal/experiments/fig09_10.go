package experiments

import (
	"fmt"
	"strings"

	"tunio/internal/metrics"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// Fig09Result is Figure 9: impact-first tuning on FLASH.
type Fig09Result struct {
	WithPicker    metrics.Curve
	WithoutPicker metrics.Curve
	// Target is the reference bandwidth both runs are compared at (MB/s).
	Target float64
	// IterWith and IterWithout are the first iterations reaching Target
	// (-1 = never).
	IterWith, IterWithout int
	// ImprovementPct is the reduction in iterations (paper: 86.05%).
	ImprovementPct float64
	// ChangedParams lists parameters the impact-first run tuned away from
	// defaults (paper: 7 of 12).
	ChangedParams []string
}

// Fig09 tunes FLASH with and without the Smart Configuration Generation
// component and measures iterations to a common bandwidth target.
func Fig09(cfg Config) (*Fig09Result, error) {
	c := cfg.componentCluster()
	agent, err := Agent(cfg)
	if err != nil {
		return nil, err
	}

	run := func(usePicker bool) (*tuner.Result, error) {
		agent, err := agent.Clone()
		if err != nil {
			return nil, err
		}
		w, err := workload.ByName("flash", c.Procs())
		if err != nil {
			return nil, err
		}
		tc := tuner.Config{
			Space:         params.Space(),
			PopSize:       cfg.popSize(),
			MaxIterations: cfg.maxIterations() * 2, // give no-picker room to catch up
			Seed:          cfg.Seed + 200,
		}
		if usePicker {
			agent.Picker.Reset()
			tc.Picker = agent.Picker
		}
		return tuner.Run(tc, &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: cfg.reps(), Seed: cfg.Seed + 200})
	}

	with, err := run(true)
	if err != nil {
		return nil, err
	}
	without, err := run(false)
	if err != nil {
		return nil, err
	}

	// Target: 90% of the lower final best, reachable by both runs.
	target := with.Curve.FinalBest()
	if wb := without.Curve.FinalBest(); wb < target {
		target = wb
	}
	target *= 0.9

	out := &Fig09Result{
		WithPicker:    with.Curve,
		WithoutPicker: without.Curve,
		Target:        target,
		IterWith:      with.Curve.FirstReaching(target),
		IterWithout:   without.Curve.FirstReaching(target),
		ChangedParams: with.Best.ChangedFromDefault(),
	}
	if out.IterWith > 0 && out.IterWithout > 0 {
		out.ImprovementPct = 100 * (1 - float64(out.IterWith)/float64(out.IterWithout))
	}
	return out, nil
}

// String renders the figure.
func (r *Fig09Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: impact-first tuning (FLASH)\n")
	fmt.Fprintf(&b, "target bandwidth %s reached at iteration %d (impact-first) vs %d (all parameters)\n",
		fmtMBs(r.Target), r.IterWith, r.IterWithout)
	fmt.Fprintf(&b, "iteration improvement: %.1f%% (paper: 86.05%%, iteration 6 vs 43)\n", r.ImprovementPct)
	fmt.Fprintf(&b, "parameters changed from defaults: %d of 12 (paper: 7) %v\n",
		len(r.ChangedParams), r.ChangedParams)
	return b.String()
}

// StopPolicy is one stopping policy's outcome in Figure 10.
type StopPolicy struct {
	Name      string
	StopIter  int
	Bandwidth float64 // MB/s at stop
	RoTI      float64
	PctOfBest float64 // fraction of the perfect RoTI
	Minutes   float64
}

// Fig10Result covers Figures 10(a) and 10(b): early stopping on HACC.
type Fig10Result struct {
	Curve       metrics.Curve
	Baseline    float64
	PerfectRoTI float64
	PerfectIter int
	Policies    []StopPolicy
	// SpeedupAtTunIOStop is bandwidth at the RL stop over the untuned
	// bandwidth (paper: ~4x).
	SpeedupAtTunIOStop float64
}

// Fig10 tunes HACC for the full budget recording the curve, then evaluates
// the stopping policies on that same trajectory: TunIO's RL stopper, the
// 5%/5-iteration heuristic, the Maximizing Performance oracle, and the
// full budget.
func Fig10(cfg Config) (*Fig10Result, error) {
	c := cfg.componentCluster()
	agent, err := Agent(cfg)
	if err != nil {
		return nil, err
	}
	agent, err = agent.Clone()
	if err != nil {
		return nil, err
	}
	w, err := workload.ByName("hacc", c.Procs())
	if err != nil {
		return nil, err
	}
	full, err := tuner.Run(tuner.Config{
		Space:         params.Space(),
		PopSize:       cfg.popSize(),
		MaxIterations: cfg.maxIterations(),
		Seed:          cfg.Seed + 300,
	}, &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: cfg.reps(), Seed: cfg.Seed + 300})
	if err != nil {
		return nil, err
	}
	curve := full.Curve

	perfect, _, perfectIter := curve.PeakRoTI()

	// replay a stopper over the recorded curve
	replay := func(s tuner.Stopper) int {
		s.Reset()
		for i, p := range curve {
			if i == 0 {
				continue
			}
			if s.Stop(p.Iteration, p.BestPerf) {
				return i
			}
		}
		return len(curve) - 1
	}

	agent.Stopper.Reset()
	tunioStop := replay(agent.Stopper)
	heuristicStop := replay(tuner.NewHeuristicStopper())
	oracleStop := replay(&tuner.OracleStopper{Target: curve.FinalBest()})
	budgetStop := len(curve) - 1

	mkPolicy := func(name string, idx int) StopPolicy {
		r := curve.RoTIAt(idx)
		pct := 0.0
		if perfect > 0 {
			pct = 100 * r / perfect
		}
		return StopPolicy{
			Name:      name,
			StopIter:  curve[idx].Iteration,
			Bandwidth: curve[idx].BestPerf,
			RoTI:      r,
			PctOfBest: pct,
			Minutes:   curve[idx].TimeMinutes,
		}
	}

	out := &Fig10Result{
		Curve:       curve,
		Baseline:    curve.Baseline(),
		PerfectRoTI: perfect,
		PerfectIter: curve[perfectIter].Iteration,
		Policies: []StopPolicy{
			mkPolicy("TunIO RL stopping", tunioStop),
			mkPolicy("Maximizing Performance", oracleStop),
			mkPolicy("Heuristic (5%/5 iters)", heuristicStop),
			mkPolicy("Full budget", budgetStop),
		},
	}
	if out.Baseline > 0 {
		out.SpeedupAtTunIOStop = curve[tunioStop].BestPerf / out.Baseline
	}
	return out, nil
}

// Policy returns the named policy row (zero value when absent).
func (r *Fig10Result) Policy(name string) StopPolicy {
	for _, p := range r.Policies {
		if p.Name == name {
			return p
		}
	}
	return StopPolicy{}
}

// String renders figures 10(a) and 10(b).
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: early stopping on HACC\n")
	fmt.Fprintf(&b, "untuned %s; perfect RoTI %.2f at iteration %d\n",
		fmtMBs(r.Baseline), r.PerfectRoTI, r.PerfectIter)
	fmt.Fprintf(&b, "%-26s %6s %12s %8s %10s %10s\n", "policy", "stop@", "bandwidth", "RoTI", "% of best", "minutes")
	for _, p := range r.Policies {
		fmt.Fprintf(&b, "%-26s %6d %12s %8.2f %9.1f%% %10.1f\n",
			p.Name, p.StopIter, fmtMBs(p.Bandwidth), p.RoTI, p.PctOfBest, p.Minutes)
	}
	fmt.Fprintf(&b, "speedup at TunIO stop: %.1fx over untuned (paper: ~4x, 2.2 GB/s over 0.55)\n",
		r.SpeedupAtTunIOStop)
	b.WriteString("(paper RoTI shares: TunIO 90.5%, MaxPerf 86.1%, heuristic 59.3%, budget 77.9%)\n")
	return b.String()
}
