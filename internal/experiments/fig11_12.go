package experiments

import (
	"fmt"
	"strings"

	"tunio/internal/metrics"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// Fig11Variant is one end-to-end pipeline variant of Figure 11.
type Fig11Variant struct {
	Name      string
	Curve     metrics.Curve
	StoppedAt int
	Stopped   bool
	BestPerf  float64
	Minutes   float64
	RoTI      float64 // at the stopping point
}

// Fig11Result covers Figures 11(a) and 11(b): the end-to-end BD-CATS
// comparison of TunIO against the HSTuner baselines, with and without the
// I/O kernel.
type Fig11Result struct {
	Variants []Fig11Variant
	// TimeReductionPct is TunIO's tuning-time reduction vs HSTuner with
	// no stop. The paper reports ~73%; in the simulation the reduction is
	// smaller because evaluation cost shrinks as configurations improve
	// (late iterations are cheap), while Cori's per-iteration cost stayed
	// roughly constant. IterationReductionPct captures the same effect in
	// budget units that are cost-invariant.
	TimeReductionPct      float64
	IterationReductionPct float64
	// RoTIGain is TunIO's RoTI minus the HSTuner-heuristic RoTI (the
	// paper's headline 173.4 MB/s-per-minute gain; 208.4 with the kernel).
	RoTIGain       float64
	RoTIGainKernel float64
}

// bdcatsWithCompute returns the BD-CATS full application (clustering
// compute included) and its compute-stripped I/O kernel equivalent.
func bdcatsWithCompute(procs int, kernel bool) workload.Workload {
	b := workload.NewBDCATS(procs)
	if !kernel {
		// DBSCAN-style clustering compute between read and write phases
		b.ComputeFlops = 4e10
	}
	return b
}

// Fig11 runs the six pipeline variants of the paper's end-to-end test.
func Fig11(cfg Config) (*Fig11Result, error) {
	c := cfg.endToEndCluster()
	agent, err := Agent(cfg)
	if err != nil {
		return nil, err
	}

	type variant struct {
		name      string
		kernel    bool
		stopper   func() tuner.Stopper
		usePicker bool
	}
	variants := []variant{
		{"HSTuner, no stop", false, nil, false},
		{"HSTuner, heuristic stop", false, func() tuner.Stopper { return tuner.NewHeuristicStopper() }, false},
		{"TunIO", false, func() tuner.Stopper { agent.Stopper.Reset(); return agent.Stopper }, true},
		{"HSTuner + I/O kernel, no stop", true, nil, false},
		{"HSTuner + I/O kernel, heuristic", true, func() tuner.Stopper { return tuner.NewHeuristicStopper() }, false},
		{"TunIO + I/O kernel", true, func() tuner.Stopper { agent.Stopper.Reset(); return agent.Stopper }, true},
	}

	out := &Fig11Result{}
	for _, v := range variants {
		// fresh agent clone per variant: online learning in one pipeline
		// must not leak into the next
		agent, err = agent.Clone()
		if err != nil {
			return nil, err
		}
		w := bdcatsWithCompute(c.Procs(), v.kernel)
		tc := tuner.Config{
			Space:         params.Space(),
			PopSize:       cfg.popSize(),
			MaxIterations: cfg.endToEndIterations(),
			Seed:          cfg.Seed + 400, // same GA trajectory across variants
		}
		if v.stopper != nil {
			tc.Stopper = v.stopper()
		}
		if v.usePicker {
			agent.Picker.Reset()
			tc.Picker = agent.Picker
		}
		res, err := tuner.Run(tc, &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: cfg.reps(), Seed: cfg.Seed + 400})
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", v.name, err)
		}
		roti := res.Curve.RoTIAt(len(res.Curve) - 1)
		out.Variants = append(out.Variants, Fig11Variant{
			Name:      v.name,
			Curve:     res.Curve,
			StoppedAt: res.StoppedAt,
			Stopped:   res.StoppedEarly,
			BestPerf:  res.BestPerf,
			Minutes:   res.Curve.TotalMinutes(),
			RoTI:      roti,
		})
	}

	get := func(name string) *Fig11Variant {
		for i := range out.Variants {
			if out.Variants[i].Name == name {
				return &out.Variants[i]
			}
		}
		return nil
	}
	noStop := get("HSTuner, no stop")
	heur := get("HSTuner, heuristic stop")
	tun := get("TunIO")
	tunK := get("TunIO + I/O kernel")
	if noStop.Minutes > 0 {
		out.TimeReductionPct = 100 * (1 - tun.Minutes/noStop.Minutes)
	}
	if noStop.StoppedAt > 0 {
		out.IterationReductionPct = 100 * (1 - float64(tun.StoppedAt)/float64(noStop.StoppedAt))
	}
	out.RoTIGain = tun.RoTI - heur.RoTI
	out.RoTIGainKernel = tunK.RoTI - heur.RoTI
	return out, nil
}

// Variant returns the named row (nil when absent).
func (r *Fig11Result) Variant(name string) *Fig11Variant {
	for i := range r.Variants {
		if r.Variants[i].Name == name {
			return &r.Variants[i]
		}
	}
	return nil
}

// String renders figures 11(a) and 11(b).
func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 11: end-to-end BD-CATS tuning\n")
	fmt.Fprintf(&b, "%-34s %6s %12s %10s %9s\n", "variant", "stop@", "bandwidth", "minutes", "RoTI")
	for _, v := range r.Variants {
		stop := fmt.Sprintf("%d", v.StoppedAt)
		if !v.Stopped {
			stop += "*"
		}
		fmt.Fprintf(&b, "%-34s %6s %12s %10.1f %9.1f\n",
			v.Name, stop, fmtMBs(v.BestPerf), v.Minutes, v.RoTI)
	}
	b.WriteString("(* ran the full budget)\n")
	fmt.Fprintf(&b, "TunIO tuning-time reduction vs no-stop: %.0f%% minutes, %.0f%% iterations (paper: ~73%%, 468 vs 1750 min)\n",
		r.TimeReductionPct, r.IterationReductionPct)
	fmt.Fprintf(&b, "TunIO RoTI gain over heuristic:         %.1f MB/s per min (paper: 173.4)\n", r.RoTIGain)
	fmt.Fprintf(&b, "TunIO+kernel RoTI gain over heuristic:  %.1f MB/s per min (paper: 208.4)\n", r.RoTIGainKernel)
	return b.String()
}

// Fig12Result is Figure 12: application lifecycle viability.
type Fig12Result struct {
	TunIO   metrics.Lifecycle
	HSTuner metrics.Lifecycle
	// ViabilityTunIO / ViabilityHSTuner are executions to break even vs
	// never tuning (paper: 1394 vs 5274).
	ViabilityTunIO   float64
	ViabilityHSTuner float64
	// Crossover is where HSTuner's (slightly better) tune overtakes
	// TunIO's total time (paper: ~3.99 million executions).
	Crossover float64
	// ViabilityImprovementPct (paper: 73.6% fewer executions).
	ViabilityImprovementPct float64
}

// Fig12 derives the lifecycle analysis from the Figure 11 runs plus the
// tuned/untuned production runtimes.
func Fig12(cfg Config, fig11 *Fig11Result) (*Fig12Result, error) {
	if fig11 == nil {
		var err error
		fig11, err = Fig11(cfg)
		if err != nil {
			return nil, err
		}
	}
	c := cfg.endToEndCluster()

	runtimeOf := func(a *params.Assignment) (float64, error) {
		w := bdcatsWithCompute(c.Procs(), false)
		res, err := workload.Execute(w, c, a.Settings(), cfg.Seed+500)
		if err != nil {
			return 0, err
		}
		return res.Runtime / 60, nil
	}

	baselineMin, err := runtimeOf(params.DefaultAssignment(params.Space()))
	if err != nil {
		return nil, err
	}

	tun := fig11.Variant("TunIO")
	hst := fig11.Variant("HSTuner, no stop")

	// production runtime under each tuner's best configuration: derive
	// from the tuned bandwidths (runtime scales inversely with perf for
	// the I/O-dominated lifecycle)
	tunedRun := func(v *Fig11Variant) float64 {
		if v.BestPerf <= 0 {
			return baselineMin
		}
		return baselineMin * v.Curve.Baseline() / v.BestPerf
	}

	out := &Fig12Result{
		TunIO: metrics.Lifecycle{
			TuneMinutes:     tun.Minutes,
			TunedRunMinutes: tunedRun(tun),
			BaselineMinutes: baselineMin,
		},
		HSTuner: metrics.Lifecycle{
			TuneMinutes:     hst.Minutes,
			TunedRunMinutes: tunedRun(hst),
			BaselineMinutes: baselineMin,
		},
	}
	out.ViabilityTunIO = out.TunIO.ViabilityPoint()
	out.ViabilityHSTuner = out.HSTuner.ViabilityPoint()
	out.Crossover = metrics.CrossoverExecutions(out.TunIO, out.HSTuner)
	if out.ViabilityHSTuner > 0 {
		out.ViabilityImprovementPct = 100 * (1 - out.ViabilityTunIO/out.ViabilityHSTuner)
	}
	return out, nil
}

// String renders figure 12.
func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12: application lifecycle viability (BD-CATS)\n")
	fmt.Fprintf(&b, "%-8s tune %8.1f min, tuned run %7.3f min/exec (baseline %.3f)\n",
		"TunIO", r.TunIO.TuneMinutes, r.TunIO.TunedRunMinutes, r.TunIO.BaselineMinutes)
	fmt.Fprintf(&b, "%-8s tune %8.1f min, tuned run %7.3f min/exec\n",
		"HSTuner", r.HSTuner.TuneMinutes, r.HSTuner.TunedRunMinutes)
	fmt.Fprintf(&b, "viability: TunIO %.0f executions vs HSTuner %.0f (paper: 1394 vs 5274)\n",
		r.ViabilityTunIO, r.ViabilityHSTuner)
	fmt.Fprintf(&b, "viability improvement: %.1f%% fewer executions (paper: 73.6%%)\n", r.ViabilityImprovementPct)
	fmt.Fprintf(&b, "TunIO retains the advantage until %.3g executions (paper: ~3.99e6)\n", r.Crossover)
	return b.String()
}
