package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"tunio/internal/csrc"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// evalPopulation is the genome count the evaluator benchmark scores with
// each engine — the acceptance scale of the staged-replay speedup claim.
const evalPopulation = 32

// EvalVariant is one engine's cost on one workload's population.
type EvalVariant struct {
	NsPerGenome  float64 `json:"ns_per_genome"`
	BytesPerEval float64 `json:"b_per_genome"`
}

// EvalRow compares the two evaluation engines on one workload.
type EvalRow struct {
	Workload string      `json:"workload"`
	Direct   EvalVariant `json:"direct"` // re-interpret the kernel per genome
	Traced   EvalVariant `json:"traced"` // staged trace replay (recording included)
	Speedup  float64     `json:"speedup"`

	// Stage-cache effectiveness over the population.
	PlanHitRate float64 `json:"plan_hit_rate"`
	WireHitRate float64 `json:"wire_hit_rate"`

	// Identical reports whether every genome scored bit-identically under
	// both engines (the correctness half of the claim, re-checked in situ).
	Identical bool `json:"identical"`
}

// EvalBenchResult is the staged trace-replay evaluation benchmark: for
// every paper workload it scores the same random population with the
// direct C-source evaluator and with the TraceEvaluator (whose one-time
// recording cost is charged to its total), comparing per-genome wall
// time, per-genome allocation, cache hit rates, and score identity.
type EvalBenchResult struct {
	Population int       `json:"population"`
	Reps       int       `json:"reps"`
	Rows       []EvalRow `json:"workloads"`
}

// EvalBench runs the benchmark over every paper workload.
func EvalBench(cfg Config) (*EvalBenchResult, error) {
	return evalBench(cfg, sliceWorkloads)
}

// evalBench runs the benchmark over the named workloads (split out so the
// unit test can cover a single one).
func evalBench(cfg Config, names []string) (*EvalBenchResult, error) {
	c := cfg.componentCluster()
	out := &EvalBenchResult{Population: evalPopulation, Reps: cfg.reps()}
	for _, name := range names {
		w, err := workload.ByName(name, c.Procs())
		if err != nil {
			return nil, err
		}
		cw, ok := w.(workload.HasCSource)
		if !ok {
			return nil, fmt.Errorf("evalbench: %s has no C source", name)
		}
		prog, err := csrc.Parse(cw.CSource())
		if err != nil {
			return nil, fmt.Errorf("evalbench: %s: %w", name, err)
		}

		// The population mirrors a converging GA's: each genome is 1-3
		// mutations off the incumbent default. That is the regime the
		// projection cache serves — genomes differing only outside a stage's
		// footprint share its artifact.
		space := params.Space()
		rng := rand.New(rand.NewSource(cfg.Seed + 500))
		genomes := make([]*params.Assignment, evalPopulation)
		for i := range genomes {
			a := params.DefaultAssignment(space)
			for k := 1 + rng.Intn(3); k > 0; k-- {
				p := space[rng.Intn(len(space))]
				if err := a.SetIndex(p.Name, rng.Intn(len(p.Values))); err != nil {
					return nil, err
				}
			}
			genomes[i] = a
		}

		// Both engines use the legacy per-call seed counter, so scoring the
		// same genomes in the same order compares bit-identical work.
		direct := &tuner.CSourceEvaluator{Prog: prog, Cluster: c, Reps: cfg.reps(), Seed: cfg.Seed + 500}
		traced := &tuner.TraceEvaluator{Prog: prog, Cluster: c, Reps: cfg.reps(), Seed: cfg.Seed + 500,
			Legacy: true, KernelStyle: true}

		row := EvalRow{Workload: name, Identical: true}
		dPerf, dCost, err := scorePopulation(direct, genomes, &row.Direct)
		if err != nil {
			return nil, fmt.Errorf("evalbench: %s direct: %w", name, err)
		}
		tPerf, tCost, err := scorePopulation(traced, genomes, &row.Traced)
		if err != nil {
			return nil, fmt.Errorf("evalbench: %s traced: %w", name, err)
		}
		for i := range genomes {
			if dPerf[i] != tPerf[i] || dCost[i] != tCost[i] {
				row.Identical = false
			}
		}
		if row.Traced.NsPerGenome > 0 {
			row.Speedup = row.Direct.NsPerGenome / row.Traced.NsPerGenome
		}
		stats := traced.Stats()
		row.PlanHitRate = stats.PlanHitRate()
		row.WireHitRate = stats.WireHitRate()
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// scorePopulation evaluates every genome once, filling the variant's
// per-genome wall time and allocation, and returns the scores.
func scorePopulation(e tuner.Evaluator, genomes []*params.Assignment, v *EvalVariant) (perf, cost []float64, err error) {
	perf = make([]float64, len(genomes))
	cost = make([]float64, len(genomes))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i, g := range genomes {
		if perf[i], cost[i], err = e.Evaluate(g, i); err != nil {
			return nil, nil, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	v.NsPerGenome = float64(elapsed.Nanoseconds()) / float64(len(genomes))
	v.BytesPerEval = float64(after.TotalAlloc-before.TotalAlloc) / float64(len(genomes))
	return perf, cost, nil
}

// String renders the benchmark table.
func (r *EvalBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Evaluation engines: direct interpretation vs staged trace replay (population %d, %d reps)\n",
		r.Population, r.Reps)
	fmt.Fprintf(&b, "%-8s %14s %14s %8s %12s %12s %10s %10s %6s\n",
		"workload", "direct ns/g", "traced ns/g", "speedup", "direct B/g", "traced B/g",
		"plan hit", "wire hit", "ident")
	atLeast3x := 0
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %14.0f %14.0f %7.1fx %12.0f %12.0f %9.0f%% %9.0f%% %6v\n",
			row.Workload, row.Direct.NsPerGenome, row.Traced.NsPerGenome, row.Speedup,
			row.Direct.BytesPerEval, row.Traced.BytesPerEval,
			row.PlanHitRate*100, row.WireHitRate*100, row.Identical)
		if row.Speedup >= 3 && row.Identical {
			atLeast3x++
		}
	}
	fmt.Fprintf(&b, "replay at least 3x faster with identical scores on %d/%d workloads (recording cost included)\n",
		atLeast3x, len(r.Rows))
	return b.String()
}
