// Package mpiio simulates the MPI-IO middleware layer (ROMIO): independent
// I/O passes extents straight to the storage backend, while collective I/O
// implements generalized two-phase buffering — data is shuffled over the
// network to cb_nodes aggregator processes that stage it in cb_buffer_size
// buffers and issue large contiguous file requests.
//
// This reproduces the collective-buffering tuning trade-offs the paper's
// parameter space exercises: too few aggregators bottleneck on aggregator
// NICs, too many re-create storage contention; small collective buffers
// multiply the number of two-phase rounds (each paying shuffle latency),
// huge ones waste little but are capped by memory.
package mpiio

import (
	"cmp"
	"fmt"
	"slices"

	"tunio/internal/cluster"
	"tunio/internal/ioreq"
)

// Hints are the MPI-IO tuning knobs (a subset of ROMIO's hint set).
type Hints struct {
	CollectiveWrite bool  // romio_cb_write
	CollectiveRead  bool  // romio_cb_read
	CBNodes         int   // cb_nodes: number of aggregators
	CBBufferSize    int64 // cb_buffer_size: staging buffer per aggregator
}

// Fill normalizes hints for a communicator of nprocs processes (the
// normalization Open applies; exported for plan lowering, which computes
// aggregation schedules outside an open file handle).
func (h Hints) Fill(nprocs int) Hints { return h.fill(nprocs) }

// fill normalizes hints for a communicator of nprocs processes.
func (h Hints) fill(nprocs int) Hints {
	if h.CBNodes <= 0 {
		h.CBNodes = 1
	}
	if h.CBNodes > nprocs {
		h.CBNodes = nprocs
	}
	if h.CBBufferSize <= 0 {
		h.CBBufferSize = 16 << 20 // ROMIO default
	}
	return h
}

// File is an MPI-IO file handle over a storage backend.
type File struct {
	sim     *cluster.Sim
	backend ioreq.Backend
	name    string
	hints   Hints
	nprocs  int
}

// Open opens (or creates at the backend on first write) a file for nprocs
// processes. MPI_File_open is collective: it costs one metadata round trip
// plus a barrier.
func Open(sim *cluster.Sim, backend ioreq.Backend, name string, nprocs int, hints Hints) (*File, error) {
	f := &File{}
	if err := f.Reopen(sim, backend, name, nprocs, hints); err != nil {
		return nil, err
	}
	return f, nil
}

// Reopen reinitializes the handle in place, running the same collective
// open protocol (metadata round trip + barrier) as Open. It exists so
// replay runtimes can reuse one handle allocation across executions; a
// reopened handle is indistinguishable from a freshly opened one.
func (f *File) Reopen(sim *cluster.Sim, backend ioreq.Backend, name string, nprocs int, hints Hints) error {
	if name == "" {
		return fmt.Errorf("mpiio: empty file name")
	}
	if nprocs <= 0 {
		return fmt.Errorf("mpiio: nprocs must be positive, got %d", nprocs)
	}
	backend.MetaOps(1, 1)
	sim.Barrier(nprocs)
	*f = File{sim: sim, backend: backend, name: name, hints: hints.fill(nprocs), nprocs: nprocs}
	return nil
}

// Hints returns the normalized hints in effect.
func (f *File) Hints() Hints { return f.hints }

// WriteAll performs a collective write of the extents (one per requesting
// rank region). Depending on hints it runs two-phase collective buffering
// or falls through to independent I/O. Returns elapsed simulated seconds.
func (f *File) WriteAll(extents []ioreq.Extent) (float64, error) {
	return f.transferAll(extents, true)
}

// ReadAll is the collective read counterpart.
func (f *File) ReadAll(extents []ioreq.Extent) (float64, error) {
	return f.transferAll(extents, false)
}

// WriteIndependent issues the extents directly (MPI_File_write_at from each
// rank, no coordination).
func (f *File) WriteIndependent(extents []ioreq.Extent) (float64, error) {
	return f.independent(extents, true)
}

// ReadIndependent issues independent reads.
func (f *File) ReadIndependent(extents []ioreq.Extent) (float64, error) {
	return f.independent(extents, false)
}

func (f *File) independent(extents []ioreq.Extent, isWrite bool) (float64, error) {
	if len(extents) == 0 {
		return 0, nil
	}
	total := ioreq.TotalBytes(extents)
	var elapsed float64
	if isWrite {
		elapsed = f.backend.WritePhase(f.name, extents)
		f.sim.Report.AddWrite("mpiio", total, elapsed)
	} else {
		elapsed = f.backend.ReadPhase(f.name, extents)
		f.sim.Report.AddRead("mpiio", total, elapsed)
	}
	return elapsed, nil
}

func (f *File) transferAll(extents []ioreq.Extent, isWrite bool) (float64, error) {
	if len(extents) == 0 {
		return 0, nil
	}
	for _, e := range extents {
		if err := e.Validate(); err != nil {
			return 0, err
		}
	}
	collective := f.hints.CollectiveWrite
	if !isWrite {
		collective = f.hints.CollectiveRead
	}
	if !collective {
		return f.independent(extents, isWrite)
	}
	return f.ExecCollective(PlanCollective(extents, f.hints, f.nprocs, f.sim.Cluster.ProcsPerNode), isWrite), nil
}

// CollRound is one two-phase round of a collective plan: the aggregator
// file extents issued together and the bytes shuffled over the network.
type CollRound struct {
	Extents []ioreq.Extent
	Bytes   int64
}

// CollPlan is the precomputed two-phase aggregation schedule of one
// collective transfer. It is pure integer data — independent of the clock,
// the RNG, and the storage backend — so it depends only on the extents and
// the {cb_nodes, cb_buffer_size, nprocs, ppn} projection and can be cached
// and replayed across configurations that share those values.
type CollPlan struct {
	Rounds   []CollRound
	SrcNodes int
	AggNodes int
	Total    int64 // application bytes (sum over requesting extents)
}

// PlanCollective computes the two-phase aggregation schedule for a
// collective transfer of extents under filled hints h. Extents must already
// be validated.
func PlanCollective(extents []ioreq.Extent, h Hints, nprocs, ppn int) *CollPlan {
	runs := coverageRuns(extents)

	// Partition the covered byte range among aggregators in contiguous
	// file-domain slices, then stage cb_buffer_size bytes per aggregator
	// per round.
	agg := h.CBNodes
	var covered int64
	for _, r := range runs {
		covered += r.Size
	}
	domain := (covered + int64(agg) - 1) / int64(agg)
	if domain == 0 {
		domain = 1
	}
	rounds := int((domain + h.CBBufferSize - 1) / h.CBBufferSize)
	if rounds == 0 {
		rounds = 1
	}

	// Aggregators are spread evenly over the ranks (ROMIO picks one per
	// node where possible), so count the distinct nodes they land on.
	spacing := nprocs / agg
	if spacing < 1 {
		spacing = 1
	}
	aggNodeSet := make(map[int]struct{}, agg)
	for a := 0; a < agg; a++ {
		aggNodeSet[(a*spacing)/ppn] = struct{}{}
	}
	srcNodes := nprocs / ppn
	if nprocs%ppn != 0 {
		srcNodes++
	}

	plan := &CollPlan{
		SrcNodes: srcNodes,
		AggNodes: len(aggNodeSet),
		Total:    ioreq.TotalBytes(extents),
	}
	perRound := h.CBBufferSize
	for round := 0; round < rounds; round++ {
		var roundExtents []ioreq.Extent
		var roundBytes int64
		for a := 0; a < agg; a++ {
			// aggregator a's coverage-space slice for this round
			lo := int64(a)*domain + int64(round)*perRound
			hi := lo + perRound
			if cap := int64(a+1) * domain; hi > cap {
				hi = cap
			}
			if lo >= hi {
				continue
			}
			aggRank := a * spacing
			pieces := sliceRuns(runs, lo, hi, aggRank)
			for _, p := range pieces {
				roundBytes += p.Size
			}
			roundExtents = append(roundExtents, pieces...)
		}
		if len(roundExtents) == 0 {
			continue
		}
		plan.Rounds = append(plan.Rounds, CollRound{Extents: roundExtents, Bytes: roundBytes})
	}
	return plan
}

// ExecCollective services a precomputed collective plan against the live
// backend, charging shuffle, storage, and barrier time in the same order as
// a directly issued collective transfer.
func (f *File) ExecCollective(p *CollPlan, isWrite bool) float64 {
	elapsed := 0.0
	for _, rd := range p.Rounds {
		if isWrite {
			// Phase 1: shuffle rank data to aggregators; ~one message per
			// (rank, aggregator) pair that exchanges data, bounded by ranks.
			elapsed += f.sim.NetworkShuffle(rd.Bytes, p.SrcNodes, p.AggNodes, f.nprocs)
			elapsed += f.backend.WritePhase(f.name, rd.Extents)
		} else {
			elapsed += f.backend.ReadPhase(f.name, rd.Extents)
			elapsed += f.sim.NetworkShuffle(rd.Bytes, p.AggNodes, p.SrcNodes, f.nprocs)
		}
	}
	elapsed += f.sim.Barrier(f.nprocs)

	if isWrite {
		f.sim.Report.AddWrite("mpiio", p.Total, elapsed)
	} else {
		f.sim.Report.AddRead("mpiio", p.Total, elapsed)
	}
	return elapsed
}

// coverageRuns merges all extents (ignoring rank) into disjoint sorted
// runs of geometric coverage. Strided extents contribute their full span:
// in the interleaved patterns collective buffering serves, the gaps are
// tiled by other ranks' payloads, so the union is the data the aggregators
// move.
func coverageRuns(extents []ioreq.Extent) []ioreq.Extent {
	sorted := extents
	if !offsetSorted(extents) {
		sorted = make([]ioreq.Extent, len(extents))
		copy(sorted, extents)
		slices.SortFunc(sorted, func(a, b ioreq.Extent) int {
			return cmp.Compare(a.Offset, b.Offset)
		})
	}
	var runs []ioreq.Extent
	for _, e := range sorted {
		end := e.Offset + e.SpanLen()
		if n := len(runs); n > 0 && e.Offset <= runs[n-1].End() {
			if end > runs[n-1].End() {
				runs[n-1].Size = end - runs[n-1].Offset
			}
			continue
		}
		runs = append(runs, ioreq.Extent{Offset: e.Offset, Size: e.SpanLen()})
	}
	return runs
}

// offsetSorted reports whether extents are already in non-decreasing
// offset order — the common case, since collective phases gather extents
// in rank order over rank-partitioned files.
func offsetSorted(extents []ioreq.Extent) bool {
	for i := 1; i < len(extents); i++ {
		if extents[i].Offset < extents[i-1].Offset {
			return false
		}
	}
	return true
}

// sliceRuns maps the coverage-space byte range [lo, hi) back to file-space
// extents, attributing them to aggregator rank aggRank.
func sliceRuns(runs []ioreq.Extent, lo, hi int64, aggRank int) []ioreq.Extent {
	var out []ioreq.Extent
	var pos int64 // coverage-space cursor at the start of each run
	for _, r := range runs {
		runLo, runHi := pos, pos+r.Size
		pos = runHi
		if hi <= runLo || lo >= runHi {
			continue
		}
		s, e := lo, hi
		if s < runLo {
			s = runLo
		}
		if e > runHi {
			e = runHi
		}
		out = append(out, ioreq.Extent{
			Offset: r.Offset + (s - runLo),
			Size:   e - s,
			Rank:   aggRank,
		})
	}
	return out
}
