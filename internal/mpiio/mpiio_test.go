package mpiio

import (
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/ioreq"
	"tunio/internal/lustre"
)

func newStack(t *testing.T, nodes, ppn int) (*cluster.Sim, *lustre.Backend) {
	t.Helper()
	c := cluster.CoriHaswell(nodes, ppn)
	c.Noise = 0
	sim, err := cluster.NewSim(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lustre.New(lustre.CoriScratch(), sim)
	if err != nil {
		t.Fatal(err)
	}
	return sim, &lustre.Backend{FS: fs, StripeCount: 8, StripeSize: 1 << 20}
}

func TestOpenValidation(t *testing.T) {
	sim, be := newStack(t, 4, 32)
	if _, err := Open(sim, be, "", 128, Hints{}); err == nil {
		t.Fatal("empty name: want error")
	}
	if _, err := Open(sim, be, "f", 0, Hints{}); err == nil {
		t.Fatal("zero procs: want error")
	}
	f, err := Open(sim, be, "f", 128, Hints{CBNodes: 100000, CBBufferSize: -5})
	if err != nil {
		t.Fatal(err)
	}
	h := f.Hints()
	if h.CBNodes != 128 {
		t.Fatalf("CBNodes not clamped: %d", h.CBNodes)
	}
	if h.CBBufferSize != 16<<20 {
		t.Fatalf("CBBufferSize default: %d", h.CBBufferSize)
	}
}

// stridedExtents builds the classic interleaved small-block pattern that
// collective buffering exists to fix: each rank writes `blocks` blocks of
// `blockSize`, strided by nprocs.
func stridedExtents(nprocs, blocks int, blockSize int64) []ioreq.Extent {
	var out []ioreq.Extent
	for r := 0; r < nprocs; r++ {
		for b := 0; b < blocks; b++ {
			off := (int64(b)*int64(nprocs) + int64(r)) * blockSize
			out = append(out, ioreq.Extent{Offset: off, Size: blockSize, Rank: r})
		}
	}
	return out
}

func TestCollectiveBeatsIndependentOnStridedSmallWrites(t *testing.T) {
	run := func(collective bool) float64 {
		sim, be := newStack(t, 4, 32)
		f, err := Open(sim, be, "f", 128, Hints{
			CollectiveWrite: collective, CBNodes: 4, CBBufferSize: 16 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		d, err := f.WriteAll(stridedExtents(128, 32, 128<<10))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ind := run(false)
	coll := run(true)
	if coll >= ind {
		t.Fatalf("collective %.4fs not faster than independent %.4fs", coll, ind)
	}
}

func TestCollectiveWriteCoversAllBytes(t *testing.T) {
	sim, be := newStack(t, 4, 32)
	f, _ := Open(sim, be, "f", 128, Hints{CollectiveWrite: true, CBNodes: 8, CBBufferSize: 4 << 20})
	extents := stridedExtents(128, 8, 256<<10)
	want := ioreq.TotalBytes(extents)
	if _, err := f.WriteAll(extents); err != nil {
		t.Fatal(err)
	}
	if got := sim.Report.Layer("lustre").BytesWritten; got != want {
		t.Fatalf("lustre received %d bytes, want %d", got, want)
	}
	if got := sim.Report.Layer("mpiio").BytesWritten; got != want {
		t.Fatalf("mpiio recorded %d bytes, want %d", got, want)
	}
}

func TestTinyCollectiveBufferCostsMoreRounds(t *testing.T) {
	run := func(buf int64) float64 {
		sim, be := newStack(t, 4, 32)
		f, _ := Open(sim, be, "f", 128, Hints{CollectiveWrite: true, CBNodes: 4, CBBufferSize: buf})
		d, err := f.WriteAll(stridedExtents(128, 16, 256<<10))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	small := run(256 << 10)
	large := run(64 << 20)
	if small <= large {
		t.Fatalf("256KiB buffer %.4fs not slower than 64MiB %.4fs", small, large)
	}
}

func TestIndependentPassThrough(t *testing.T) {
	sim, be := newStack(t, 4, 32)
	f, _ := Open(sim, be, "f", 128, Hints{})
	exts := []ioreq.Extent{{Offset: 0, Size: 1 << 20, Rank: 0}}
	d, err := f.WriteIndependent(exts)
	if err != nil || d <= 0 {
		t.Fatalf("independent write: %v, %v", d, err)
	}
	if sim.Report.Layer("mpiio").WriteOps != 1 {
		t.Fatal("mpiio write not counted")
	}
	d, err = f.ReadIndependent(exts)
	if err != nil || d <= 0 {
		t.Fatalf("independent read: %v, %v", d, err)
	}
}

func TestReadAllCollective(t *testing.T) {
	sim, be := newStack(t, 4, 32)
	// Populate the file first.
	fw, _ := Open(sim, be, "f", 128, Hints{CollectiveWrite: true, CBNodes: 4})
	extents := stridedExtents(128, 8, 256<<10)
	fw.WriteAll(extents)

	fr, _ := Open(sim, be, "f", 128, Hints{CollectiveRead: true, CBNodes: 4})
	d, err := fr.ReadAll(extents)
	if err != nil || d <= 0 {
		t.Fatalf("collective read: %v, %v", d, err)
	}
	if got, want := sim.Report.Layer("mpiio").BytesRead, ioreq.TotalBytes(extents); got != want {
		t.Fatalf("read bytes %d, want %d", got, want)
	}
}

func TestEmptyTransfers(t *testing.T) {
	sim, be := newStack(t, 4, 32)
	f, _ := Open(sim, be, "f", 128, Hints{CollectiveWrite: true})
	if d, err := f.WriteAll(nil); err != nil || d != 0 {
		t.Fatal("empty WriteAll should be free")
	}
	if d, err := f.WriteIndependent(nil); err != nil || d != 0 {
		t.Fatal("empty WriteIndependent should be free")
	}
}

func TestInvalidExtentRejected(t *testing.T) {
	sim, be := newStack(t, 4, 32)
	f, _ := Open(sim, be, "f", 128, Hints{CollectiveWrite: true})
	if _, err := f.WriteAll([]ioreq.Extent{{Offset: -2, Size: 1}}); err == nil {
		t.Fatal("want error")
	}
}

func TestCoverageRuns(t *testing.T) {
	runs := coverageRuns([]ioreq.Extent{
		{Offset: 100, Size: 50, Rank: 1},
		{Offset: 0, Size: 50, Rank: 0},
		{Offset: 25, Size: 50, Rank: 2}, // overlaps first run
	})
	if len(runs) != 2 {
		t.Fatalf("runs = %v", runs)
	}
	if runs[0].Offset != 0 || runs[0].Size != 75 || runs[1].Offset != 100 || runs[1].Size != 50 {
		t.Fatalf("runs = %v", runs)
	}
}

func TestSliceRuns(t *testing.T) {
	runs := []ioreq.Extent{{Offset: 0, Size: 100}, {Offset: 1000, Size: 100}}
	// coverage space is [0, 200); slice [50, 150) maps to file [50,100)+[1000,1050)
	out := sliceRuns(runs, 50, 150, 7)
	if len(out) != 2 {
		t.Fatalf("sliceRuns = %v", out)
	}
	if out[0].Offset != 50 || out[0].Size != 50 || out[1].Offset != 1000 || out[1].Size != 50 {
		t.Fatalf("sliceRuns = %v", out)
	}
	for _, e := range out {
		if e.Rank != 7 {
			t.Fatal("aggregator rank not attributed")
		}
	}
	if got := sliceRuns(runs, 500, 600, 0); got != nil {
		t.Fatalf("out-of-coverage slice = %v, want nil", got)
	}
}

func TestMoreAggregatorsHelpLargeContiguous(t *testing.T) {
	// With 64 nodes and a wide stripe, 32 aggregators should beat 1.
	run := func(cb int) float64 {
		c := cluster.CoriHaswell(64, 2)
		c.Noise = 0
		sim, _ := cluster.NewSim(c, 1)
		fs, _ := lustre.New(lustre.CoriScratch(), sim)
		be := &lustre.Backend{FS: fs, StripeCount: 64, StripeSize: 1 << 20}
		f, _ := Open(sim, be, "f", 128, Hints{CollectiveWrite: true, CBNodes: cb, CBBufferSize: 32 << 20})
		var extents []ioreq.Extent
		const per = 16 << 20
		for r := 0; r < 128; r++ {
			extents = append(extents, ioreq.Extent{Offset: int64(r) * per, Size: per, Rank: r})
		}
		d, err := f.WriteAll(extents)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	one := run(1)
	many := run(32)
	if many >= one {
		t.Fatalf("32 aggregators %.4fs not faster than 1 aggregator %.4fs", many, one)
	}
}

func TestCollectiveCoverageWithStridedSpans(t *testing.T) {
	// Interleaved strided extents: each of 4 ranks owns every 4th 256KiB
	// block of a 16MiB region, expressed as one extent per rank with
	// Span = full region. The collective union must cover all 16MiB.
	sim, be := newStack(t, 4, 32)
	f, _ := Open(sim, be, "f", 128, Hints{CollectiveWrite: true, CBNodes: 4, CBBufferSize: 32 << 20})
	const region = 16 << 20
	var extents []ioreq.Extent
	for r := 0; r < 4; r++ {
		extents = append(extents, ioreq.Extent{
			Offset: int64(r) * (256 << 10),
			Size:   region / 4,
			Rank:   r,
			Count:  16,
			Span:   region - int64(r)*(256<<10),
		})
	}
	if _, err := f.WriteAll(extents); err != nil {
		t.Fatal(err)
	}
	if got := sim.Report.Layer("lustre").BytesWritten; got != region {
		t.Fatalf("lustre received %d bytes, want full %d coverage", got, region)
	}
}

func TestIndependentStridedSpanSpreadsOverStripes(t *testing.T) {
	// A strided extent spanning many stripes must load several OSTs even
	// though its payload is small relative to the span.
	sim, be := newStack(t, 4, 32)
	f, _ := Open(sim, be, "f", 128, Hints{})
	dense := func() float64 {
		d, err := f.WriteIndependent([]ioreq.Extent{{Offset: 0, Size: 2 << 20, Rank: 0}})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}()
	strided := func() float64 {
		d, err := f.WriteIndependent([]ioreq.Extent{{
			Offset: 0, Size: 2 << 20, Rank: 0, Count: 32, Span: 32 << 20,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}()
	_ = dense
	_ = strided
	// both must complete; detailed distribution checked at the lustre level
	if got := sim.Report.Layer("lustre").BytesWritten; got != 4<<20 {
		t.Fatalf("bytes written = %d, want 4MiB total", got)
	}
}
