package tunio

import (
	"strings"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

func TestParameterSpace(t *testing.T) {
	space := ParameterSpace()
	if len(space) != 12 {
		t.Fatalf("space = %d params, want 12", len(space))
	}
}

func TestDiscoverIOFacade(t *testing.T) {
	src := `
int main() {
    hid_t f = H5Fcreate("/scratch/x.h5", 0, 0, 0);
    double waste = 1.0;
    waste = waste * 2.0;
    H5Fclose(f);
    return 0;
}
`
	k, err := DiscoverIO(src, DiscoveryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(k.Source, "waste") {
		t.Fatal("compute survived discovery")
	}
	if !strings.Contains(k.Source, "H5Fcreate") {
		t.Fatal("I/O dropped")
	}
}

func TestTuneValidation(t *testing.T) {
	if _, err := Tune(TuneOptions{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload: want error")
	}
	agent := &TunIO{}
	if _, err := Tune(TuneOptions{Workload: "vpic", Agent: agent, Heuristic: true}); err == nil {
		t.Fatal("Agent+Heuristic: want error")
	}
}

func TestTuneHSTunerPipelineShort(t *testing.T) {
	res, err := Tune(TuneOptions{
		Workload: "macsio",
		Nodes:    2, ProcsPerNode: 8,
		PopSize: 6, MaxIterations: 5, Reps: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Curve.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.BestPerf <= 0 || res.Best == nil {
		t.Fatal("no result")
	}
	if res.StoppedEarly {
		t.Fatal("no stopper attached but stopped early")
	}
}

func TestTuneHeuristicStops(t *testing.T) {
	res, err := Tune(TuneOptions{
		Workload: "macsio",
		Nodes:    2, ProcsPerNode: 8,
		PopSize: 6, MaxIterations: 40, Reps: 1, Seed: 4,
		Heuristic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Fatalf("heuristic never stopped in %d iterations", res.StoppedAt)
	}
}

func TestSessionPublicAPI(t *testing.T) {
	agent, err := Train(TrainConfig{
		Seed: 21, ExtraRandomRuns: 4, StopperEpochs: 8, PickerEpochs: 5,
		StopperHorizon: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(agent, ParameterSpace())
	if err != nil {
		t.Fatal(err)
	}
	if sess.Rounds() != 0 {
		t.Fatal("fresh session has rounds")
	}
}

func TestTuneWithAgent(t *testing.T) {
	agent, err := Train(TrainConfig{
		Seed: 22, ExtraRandomRuns: 4, StopperEpochs: 8, PickerEpochs: 5,
		StopperHorizon: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(TuneOptions{
		Workload: "macsio",
		Nodes:    2, ProcsPerNode: 8,
		Agent:   agent,
		PopSize: 4, MaxIterations: 6, Reps: 1, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf <= 0 {
		t.Fatal("agent pipeline produced nothing")
	}
	for _, trace := range res.SubsetTrace[1:] {
		if trace == nil {
			t.Fatal("picker did not supply subsets")
		}
	}
}

// TestFullPipelineArchitecture exercises the paper's Figure 3 flow end to
// end through public-ish seams: source -> Application I/O Discovery ->
// kernel-driven Configuration Evaluation (with the §III-B error fallback
// armed) -> tuned configuration validated on the full application.
func TestFullPipelineArchitecture(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	w := workload.NewVPIC(c.Procs())
	w.ParticlesPerRank = 32 << 10
	w.Steps = 1
	w.ComputeFlops = 5e9

	// step 1: discovery
	kernel, err := DiscoverIO(w.CSource(), DiscoveryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// step 2: tune evaluating the kernel, falling back to the full app on
	// kernel errors
	res, err := tuner.Run(tuner.Config{
		Space: ParameterSpace(), PopSize: 6, MaxIterations: 8, Seed: 31,
		Stopper: tuner.NewHeuristicStopper(),
	}, &tuner.FallbackEvaluator{
		Primary:  &tuner.CSourceEvaluator{Prog: kernel.File, Cluster: c, Reps: 1, Seed: 31},
		Fallback: &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: 31},
	})
	if err != nil {
		t.Fatal(err)
	}

	// step 3: the tuned configuration must beat the defaults on the full
	// application
	def, err := workload.Execute(w, c, tunio_defaultAssignment().Settings(), 99)
	if err != nil {
		t.Fatal(err)
	}
	tun, err := workload.Execute(w, c, res.Best.Settings(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if tun.Perf <= def.Perf {
		t.Fatalf("kernel-tuned config (%.0f MB/s) not above defaults (%.0f MB/s)", tun.Perf, def.Perf)
	}
}

func tunio_defaultAssignment() *params.Assignment {
	return params.DefaultAssignment(params.Space())
}
