// Package tunio is an AI-powered framework for optimizing HPC I/O: a Go
// reproduction of "TunIO: An AI-powered Framework for Optimizing HPC I/O"
// (IPDPS 2024).
//
// TunIO attaches three optimizations to any I/O tuning pipeline:
//
//   - Application I/O Discovery (DiscoverIO): reduce application source to
//     an I/O kernel so objective evaluations run only the statements that
//     matter to I/O, optionally with loop reduction and I/O path switching;
//   - Smart Configuration Generation (TunIO.SubsetPicker): an RL agent
//     that selects the high-impact parameter subset to tune each iteration;
//   - Early Stopping (TunIO.Stop): an RL agent that ends tuning when
//     further investment stops paying off.
//
// The package also ships everything those components need to be exercised
// end to end without a supercomputer: a simulated HDF5/MPI-IO/Lustre
// stack, the paper's workloads (VPIC, HACC, FLASH, BD-CATS, MACSio), an
// HSTuner-style genetic tuning pipeline, and a benchmark harness that
// regenerates every figure and table of the paper's evaluation.
//
// Quick start:
//
//	agent, err := tunio.Train(tunio.TrainConfig{Seed: 1})
//	if err != nil { ... }
//	res, err := tunio.Tune(tunio.TuneOptions{
//		Workload: "flash",
//		Agent:    agent,
//		Seed:     1,
//	})
//	fmt.Printf("tuned %s: %.0f MB/s after %d iterations (%.0f minutes)\n",
//		"flash", res.BestPerf, res.StoppedAt, res.Curve.TotalMinutes())
package tunio

import (
	"context"
	"fmt"

	"tunio/internal/cluster"
	"tunio/internal/core"
	"tunio/internal/discovery"
	"tunio/internal/metrics"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// Re-exported component types (Table I of the paper).
type (
	// TunIO bundles the trained Early Stopping and Smart Configuration
	// Generation agents.
	TunIO = core.TunIO
	// TrainConfig configures offline training.
	TrainConfig = core.TrainConfig
	// DiscoveryOptions configure Application I/O Discovery.
	DiscoveryOptions = discovery.Options
	// Kernel is a discovered I/O kernel.
	Kernel = discovery.Kernel
	// Curve is a tuning trajectory with RoTI accessors.
	Curve = metrics.Curve
	// Parameter is one tunable I/O-stack knob.
	Parameter = params.Parameter
	// Result is a tuning-pipeline outcome.
	Result = tuner.Result
	// Session refines a configuration interactively across tuning rounds.
	Session = core.Session
)

// NewSession starts an interactive refinement session (§VI of the paper):
// successive Refine rounds resume from the best configuration found so
// far while the agents keep learning.
func NewSession(agent *TunIO, space []Parameter) (*Session, error) {
	return core.NewSession(agent, space)
}

// Train performs TunIO's offline training: a parameter sweep on the
// representative kernels plus PCA for the subset picker, and synthetic
// log-curve episodes for the early stopper.
func Train(cfg TrainConfig) (*TunIO, error) {
	return core.Train(cfg)
}

// DiscoverIO reduces application source code to its I/O kernel.
func DiscoverIO(sourceCode string, options DiscoveryOptions) (*Kernel, error) {
	return core.DiscoverIO(sourceCode, options)
}

// ParameterSpace returns the 12-parameter HDF5/MPI-IO/Lustre tuning space
// used throughout the paper's evaluation.
func ParameterSpace() []Parameter {
	return params.Space()
}

// TuneOptions configure a full tuning run on the simulated stack.
type TuneOptions struct {
	// Workload is one of "vpic", "hacc", "flash", "bdcats", "macsio".
	Workload string
	// Nodes/ProcsPerNode size the simulated allocation (default 4x32).
	Nodes        int
	ProcsPerNode int
	// Agent attaches TunIO's RL components; nil runs the plain HSTuner
	// pipeline (all parameters, no early stopping).
	Agent *TunIO
	// Heuristic attaches the 5%/5-iteration heuristic stopper instead of
	// the RL stopper (mutually exclusive with Agent's stopper).
	Heuristic bool
	// PopSize and MaxIterations bound the genetic pipeline (default 16/50).
	PopSize       int
	MaxIterations int
	// Reps is the number of runs averaged per evaluation (default 3).
	Reps int
	// Seed drives the whole run.
	Seed int64

	// Context, when non-nil, cancels the run between evaluations; Tune
	// then returns an error wrapping ctx.Err(). Nil means no deadline.
	Context context.Context
	// Parallelism selects the evaluation engine. 0 keeps the legacy
	// serial evaluator (per-call seed counter, no memoization) so
	// existing runs reproduce bit-for-bit. Any value >= 1 switches to
	// the batch engine: deterministic (iteration, genome)-derived seeds,
	// a worker pool of that many workers (1 = serial batch), and genome
	// memoization — curves are identical for every Parallelism >= 1.
	//
	// The batch engine scores genomes by staged trace replay (the
	// workload runs once to record its I/O trace; every configuration
	// replays it through parameter-projection-cached stage plans), which
	// produces bit-identical curves to direct simulation at a fraction of
	// the cost. If recording fails the engine reverts permanently to
	// direct simulation for the run.
	Parallelism int
	// NoTrace opts the batch engine out of trace replay, forcing direct
	// simulation of every evaluation (the pre-replay behavior; curves are
	// identical either way).
	NoTrace bool
	// Progress, when non-nil, receives each curve point as the
	// corresponding iteration completes.
	Progress func(metrics.Point)
}

// Tune runs a tuning pipeline over the simulated I/O stack and returns
// its result (curve, best configuration, stopping iteration).
func Tune(opts TuneOptions) (*Result, error) {
	nodes, ppn := opts.Nodes, opts.ProcsPerNode
	if nodes == 0 {
		nodes = 4
	}
	if ppn == 0 {
		ppn = 32
	}
	c := cluster.CoriHaswell(nodes, ppn)
	w, err := workload.ByName(opts.Workload, c.Procs())
	if err != nil {
		return nil, err
	}
	cfg := tuner.Config{
		Space:         params.Space(),
		PopSize:       opts.PopSize,
		MaxIterations: opts.MaxIterations,
		Seed:          opts.Seed,
		Progress:      opts.Progress,
	}
	switch {
	case opts.Agent != nil && opts.Heuristic:
		return nil, fmt.Errorf("tunio: Agent and Heuristic are mutually exclusive")
	case opts.Agent != nil:
		opts.Agent.Reset()
		cfg.Stopper = opts.Agent.Stopper
		cfg.Picker = opts.Agent.Picker
	case opts.Heuristic:
		cfg.Stopper = tuner.NewHeuristicStopper()
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Parallelism >= 1 {
		// Batch engine: order-independent seeds, worker pool, memoization.
		// Evaluations default to staged trace replay with direct
		// simulation as the permanent fallback if recording fails.
		seeded := &tuner.SeededWorkloadEvaluator{Workload: w, Cluster: c, Reps: opts.Reps, Seed: opts.Seed}
		var eval tuner.Evaluator = seeded
		var trace *tuner.TraceEvaluator
		if !opts.NoTrace {
			trace = &tuner.TraceEvaluator{Workload: w, Cluster: c, Reps: opts.Reps, Seed: opts.Seed}
			eval = &tuner.FallbackEvaluator{Primary: trace, Fallback: seeded}
		}
		batch := tuner.NewMemo(&tuner.Pool{Eval: eval, Workers: opts.Parallelism})
		if trace != nil {
			// Record eagerly so the kernel content hash is part of every
			// memo key from the first generation on; on a recording failure
			// the key stays empty and FallbackEvaluator reverts as before.
			if err := trace.Prepare(cfg.Space); err == nil {
				batch.SetKernelKey(trace.KernelHash())
			}
		}
		return tuner.RunBatch(ctx, cfg, batch)
	}
	eval := &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: opts.Reps, Seed: opts.Seed}
	return tuner.RunBatch(ctx, cfg, tuner.AdaptEvaluator(eval))
}
