// Package tunio is an AI-powered framework for optimizing HPC I/O: a Go
// reproduction of "TunIO: An AI-powered Framework for Optimizing HPC I/O"
// (IPDPS 2024).
//
// TunIO attaches three optimizations to any I/O tuning pipeline:
//
//   - Application I/O Discovery (DiscoverIO): reduce application source to
//     an I/O kernel so objective evaluations run only the statements that
//     matter to I/O, optionally with loop reduction and I/O path switching;
//   - Smart Configuration Generation (TunIO.SubsetPicker): an RL agent
//     that selects the high-impact parameter subset to tune each iteration;
//   - Early Stopping (TunIO.Stop): an RL agent that ends tuning when
//     further investment stops paying off.
//
// The package also ships everything those components need to be exercised
// end to end without a supercomputer: a simulated HDF5/MPI-IO/Lustre
// stack, the paper's workloads (VPIC, HACC, FLASH, BD-CATS, MACSio), an
// HSTuner-style genetic tuning pipeline, and a benchmark harness that
// regenerates every figure and table of the paper's evaluation.
//
// Quick start:
//
//	agent, err := tunio.Train(tunio.TrainConfig{Seed: 1})
//	if err != nil { ... }
//	res, err := tunio.Tune(tunio.TuneOptions{
//		Workload: "flash",
//		Agent:    agent,
//		Seed:     1,
//	})
//	fmt.Printf("tuned %s: %.0f MB/s after %d iterations (%.0f minutes)\n",
//		"flash", res.BestPerf, res.StoppedAt, res.Curve.TotalMinutes())
//
// For long-lived processes serving many tuning sessions — the tuniod
// server, or any embedder — construct an Engine instead: it runs sessions
// concurrently over one shared bounded worker pool and shares the
// content-addressed kernel store and stage cache across sessions, so
// repeat kernels skip recording and hit cached stage plans. Tune is a
// thin shim over a private single-use Engine:
//
//	eng := tunio.NewEngine(tunio.EngineOptions{Workers: 8})
//	run, err := eng.Tune(ctx, tunio.JobSpec{Workload: "vpic", Seed: 1, Parallelism: 4})
//	for p := range run.Events(ctx) { ... }  // stream the curve
//	res, err := run.Wait()
package tunio

import (
	"context"

	"tunio/internal/core"
	"tunio/internal/discovery"
	"tunio/internal/metrics"
	"tunio/internal/params"
	"tunio/internal/train"
	"tunio/internal/tuner"
)

// Re-exported component types (Table I of the paper, plus the engine
// surface).
type (
	// TunIO bundles the trained Early Stopping and Smart Configuration
	// Generation agents.
	TunIO = core.TunIO
	// TrainConfig configures offline training.
	TrainConfig = core.TrainConfig
	// DiscoveryOptions configure Application I/O Discovery.
	DiscoveryOptions = discovery.Options
	// Kernel is a discovered I/O kernel.
	Kernel = discovery.Kernel
	// Curve is a tuning trajectory with RoTI accessors.
	Curve = metrics.Curve
	// Point is one tuning-iteration observation on a Curve.
	Point = metrics.Point
	// Parameter is one tunable I/O-stack knob.
	Parameter = params.Parameter
	// Result is a tuning-pipeline outcome. Result.EngineInfo reports how
	// the evaluation engine scored the run (trace replay vs direct
	// simulation, kernel hash, cache traffic).
	Result = tuner.Result
	// EngineInfo is the evaluation-engine report attached to Result.
	EngineInfo = tuner.EngineInfo
	// Refinement refines a configuration interactively across tuning
	// rounds (§VI of the paper): successive Refine rounds resume from
	// the best configuration found so far while the agents keep
	// learning.
	Refinement = core.Session
)

// Session is the historical name for Refinement.
//
// Deprecated: the name collides with the server-side tuning sessions an
// Engine runs (one Run per submitted JobSpec); "session" in newer APIs
// and docs always means those. Use Refinement for interactive
// configuration refinement. The alias is kept so existing callers
// compile unchanged.
type Session = core.Session

// NewRefinement starts an interactive refinement session (§VI of the
// paper): successive Refine rounds resume from the best configuration
// found so far while the agents keep learning.
func NewRefinement(agent *TunIO, space []Parameter) (*Refinement, error) {
	return core.NewSession(agent, space)
}

// NewSession starts an interactive refinement session.
//
// Deprecated: use NewRefinement (see the Session alias for why).
func NewSession(agent *TunIO, space []Parameter) (*Session, error) {
	return core.NewSession(agent, space)
}

// Train performs TunIO's offline training: a parameter sweep on the
// representative kernels plus PCA for the subset picker, and synthetic
// log-curve episodes for the early stopper.
//
// Training runs through the staged pipeline (package internal/train): the
// sweep is scored by parallel trace replay rather than serial direct
// execution, and each stage trains from an independent seed stream. The
// result is therefore not bit-identical to the historical core.Train
// output, but it is deterministic for a given TrainConfig and independent
// of worker count. To persist and resume training across processes, use
// the tuniotrain command and LoadAgentArtifacts.
func Train(cfg TrainConfig) (*TunIO, error) {
	return train.Train(train.Config{
		Space:           cfg.Space,
		Cluster:         cfg.Cluster,
		Kernels:         cfg.Kernels,
		ExtraRandomRuns: cfg.ExtraRandomRuns,
		StopperEpochs:   cfg.StopperEpochs,
		PickerEpochs:    cfg.PickerEpochs,
		StopperHorizon:  cfg.StopperHorizon,
		Seed:            cfg.Seed,
	})
}

// LoadAgentArtifacts assembles a trained TunIO from a tuniotrain
// artifacts directory (the picker and stopper stage artifacts written by
// `tuniotrain -artifacts dir`). The loaded agent is byte-identical, as
// JSON, to the agent the training run returned in memory.
func LoadAgentArtifacts(dir string) (*TunIO, error) {
	return train.LoadAgent(dir)
}

// DiscoverIO reduces application source code to its I/O kernel.
func DiscoverIO(sourceCode string, options DiscoveryOptions) (*Kernel, error) {
	return core.DiscoverIO(sourceCode, options)
}

// ParameterSpace returns the 12-parameter HDF5/MPI-IO/Lustre tuning space
// used throughout the paper's evaluation.
func ParameterSpace() []Parameter {
	return params.Space()
}

// TuneOptions configure a full tuning run on the simulated stack.
type TuneOptions struct {
	// Workload is one of "vpic", "hacc", "flash", "bdcats", "macsio".
	Workload string
	// Nodes/ProcsPerNode size the simulated allocation (default 4x32).
	Nodes        int
	ProcsPerNode int
	// Agent attaches TunIO's RL components; nil runs the plain HSTuner
	// pipeline (all parameters, no early stopping).
	Agent *TunIO
	// Heuristic attaches the 5%/5-iteration heuristic stopper instead of
	// the RL stopper (mutually exclusive with Agent's stopper).
	Heuristic bool
	// PopSize and MaxIterations bound the genetic pipeline (default 16/50).
	PopSize       int
	MaxIterations int
	// Reps is the number of runs averaged per evaluation (default 3).
	Reps int
	// Seed drives the whole run.
	Seed int64

	// Context, when non-nil, cancels the run between evaluations; Tune
	// then returns an error wrapping ctx.Err(). Nil means no deadline.
	Context context.Context
	// Parallelism selects the evaluation engine. 0 keeps the legacy
	// serial evaluator (per-call seed counter, no memoization) so
	// existing runs reproduce bit-for-bit. Any value >= 1 switches to
	// the batch engine: deterministic (iteration, genome)-derived seeds,
	// a worker pool of that many workers (1 = serial batch), and genome
	// memoization — curves are identical for every Parallelism >= 1.
	//
	// The batch engine scores genomes by staged trace replay (the
	// workload runs once to record its I/O trace; every configuration
	// replays it through parameter-projection-cached stage plans), which
	// produces bit-identical curves to direct simulation at a fraction of
	// the cost. If recording fails the engine reverts permanently to
	// direct simulation for the run.
	Parallelism int
	// NoTrace opts the batch engine out of trace replay, forcing direct
	// simulation of every evaluation (the pre-replay behavior; curves are
	// identical either way).
	NoTrace bool
	// Progress, when non-nil, receives each curve point as the
	// corresponding iteration completes.
	Progress func(metrics.Point)
}

// Tune runs a tuning pipeline over the simulated I/O stack and returns
// its result (curve, best configuration, stopping iteration).
//
// Tune is a synchronous shim over a private single-use Engine: each call
// gets fresh caches, so two Tune calls share nothing and curves reproduce
// the historical behavior bit for bit. Long-lived processes that tune
// repeatedly should hold one Engine and call Engine.Tune, which shares
// the kernel store and stage cache across sessions.
func Tune(opts TuneOptions) (*Result, error) {
	run, err := NewEngine(EngineOptions{}).Tune(opts.Context, JobSpec{
		Workload:      opts.Workload,
		Nodes:         opts.Nodes,
		ProcsPerNode:  opts.ProcsPerNode,
		Agent:         opts.Agent,
		Heuristic:     opts.Heuristic,
		PopSize:       opts.PopSize,
		MaxIterations: opts.MaxIterations,
		Reps:          opts.Reps,
		Seed:          opts.Seed,
		Parallelism:   opts.Parallelism,
		NoTrace:       opts.NoTrace,
		Progress:      opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	return run.Wait()
}
