#!/usr/bin/env sh
# ci.sh — the repository's full verification gate.
#
# Runs the build, vet, formatting, and test (including race) checks that
# must pass before merging. Usage: scripts/ci.sh [package-pattern]
# (defaults to ./...).
set -eu

cd "$(dirname "$0")/.."
pkgs="${1:-./...}"

echo "== go build =="
go build "$pkgs"

echo "== go vet =="
go vet "$pkgs"

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test =="
go test "$pkgs"

echo "== go test -race (evaluation engine) =="
# The batch evaluation engine's concurrency and staged-replay equivalence
# tests always run under the race detector, even when a narrower package
# pattern was requested: the stage cache and stack pool are shared across
# workers, so the bit-identity proofs must hold concurrently too.
go test -race -run 'TestPool|TestMemo|TestSeedFor|TestRunBatch|TestTune(ParallelDeterminism|Cancellation|Memoization)|TestTraceEvaluator|TestGate' ./internal/tuner .
go test -race -run 'TestStagedExec|TestStageCache|TestSharedStageCache|TestKernelStore|TestPooledStack' ./internal/replay

echo "== go test -race (tuning server) =="
# The server multiplexes concurrent tenants onto one shared engine
# (worker gate, kernel store, stage cache), so its whole test suite —
# including the concurrent-session and SSE streaming tests — runs under
# the race detector unconditionally.
go test -race ./internal/server

echo "== serve benchmark smoke (concurrent serving path) =="
# One workload, 4 concurrent sessions, in process and over HTTP: the
# serving path must complete and every served curve must stay
# bit-identical to a solo Tune under both cache architectures.
go test -race -run 'TestServeBenchSmoke' ./internal/servebench

echo "== go test -race (signature/trace cross-validation) =="
# The static I/O signature must exactly match the recorded trace on every
# fixture workload (event counts and byte totals, no tolerance).
go test -race -run 'TestCrossValidate' ./internal/replay

echo "== statecheck (no package-level mutable state) =="
# The evaluation engine packages are shared across worker goroutines;
# allowlisted names are init-once lookup tables that are never written
# afterwards, plus ErrBudgetExceeded — a conventional sentinel error
# (assigned once, compared with errors.Is).
go run ./cmd/statecheck -allow wireFootprint,sigEventKind,ErrBudgetExceeded internal/replay internal/tuner internal/server internal/train

echo "== fuzz smoke (interval lattice, format expansion) =="
go test -run=NONE -fuzz=FuzzIntervalJoinWiden -fuzztime=3s ./internal/analysis
go test -run=NONE -fuzz=FuzzExpandFormat -fuzztime=3s ./internal/analysis

echo "== go test -race =="
go test -race "$pkgs"

echo "== iolint self-run (fixture corpus) =="
# Generate the built-in workload sources and lint them: the shipped
# fixtures must stay free of error-severity findings, and the verifier
# must accept every transform on them (their computed paths propagate to
# constants, so TR003 stays quiet).
fixdir="$(mktemp -d)"
trap 'rm -rf "$fixdir"' EXIT
go run ./cmd/iofixtures -dir "$fixdir" > /dev/null
go run ./cmd/iolint -verify "$fixdir"/*.c

echo "== CLI exit-code contract =="
sh scripts/test_cli.sh

echo "ci: all checks passed"
