#!/usr/bin/env sh
# benchcmp.sh — compare benchmark results between a base revision and the
# working tree.
#
# Checks the base revision out into a temporary git worktree, runs the
# selected benchmarks there and in the current tree, and prints a
# per-benchmark ns/op table with the speedup. No dependencies beyond git,
# go, and awk.
#
# Usage: scripts/benchcmp.sh [-b base-rev] [-p pattern] [-n benchtime]
#   -b  base revision to compare against (default HEAD)
#   -p  benchmark regexp passed to -bench  (default BenchmarkTuneEvaluationEngine|BenchmarkFoldInterpreter)
#   -n  -benchtime value                   (default 3x)
set -eu

cd "$(dirname "$0")/.."

base="HEAD"
pattern='BenchmarkTuneEvaluationEngine|BenchmarkFoldInterpreter'
benchtime="3x"
while getopts b:p:n: opt; do
    case "$opt" in
    b) base="$OPTARG" ;;
    p) pattern="$OPTARG" ;;
    n) benchtime="$OPTARG" ;;
    *) echo "usage: $0 [-b base-rev] [-p pattern] [-n benchtime]" >&2; exit 2 ;;
    esac
done

run_bench() {
    (cd "$1" && go test -run XXX -bench "$pattern" -benchtime "$benchtime" ./... 2>/dev/null) |
        awk '$1 ~ /^Benchmark/ && $3 == "ns/op" { print $1, $2 } $1 ~ /^Benchmark/ && $4 == "ns/op" { print $1, $3 }'
}

worktree="$(mktemp -d)"
cleanup() {
    git worktree remove --force "$worktree" >/dev/null 2>&1 || true
    rm -rf "$worktree"
}
trap cleanup EXIT INT TERM

echo "benchcmp: base=$base bench='$pattern' benchtime=$benchtime"
git worktree add --quiet --detach "$worktree" "$base"

echo "== running base ($base) =="
before="$(run_bench "$worktree")"

echo "== running working tree =="
after="$(run_bench .)"

printf '%s\n' "$before" > "$worktree/.bench_before"
printf '%s\n' "$after" | awk -v beforefile="$worktree/.bench_before" '
BEGIN {
    while ((getline line < beforefile) > 0) {
        split(line, f, " ")
        base[f[1]] = f[2]
    }
    printf "%-60s %14s %14s %9s\n", "benchmark", "base ns/op", "new ns/op", "speedup"
}
{
    name = $1; new = $2
    if (name in base) {
        old = base[name]
        printf "%-60s %14.0f %14.0f %8.2fx\n", name, old, new, (new > 0 ? old / new : 0)
        delete base[name]
    } else {
        printf "%-60s %14s %14.0f %9s\n", name, "-", new, "new"
    }
}
END {
    for (name in base)
        printf "%-60s %14.0f %14s %9s\n", name, base[name], "-", "gone"
}'
