#!/usr/bin/env sh
# benchcmp.sh — compare benchmark results between a base revision and the
# working tree.
#
# Checks the base revision out into a temporary git worktree, runs the
# selected benchmarks there and in the current tree, and prints a
# per-benchmark ns/op table with the speedup. No dependencies beyond git,
# go, and awk.
#
# With -f, compares a tunebench JSON figure instead: the figure is
# regenerated in both trees (e.g. -f serve for BENCH_serve.json), each
# result is flattened to "path value" lines by cmd/benchjson, and every
# numeric field is diffed side by side. Fields that exist on only one
# side (a new figure, a renamed column) print as "new"/"gone".
#
# Usage: scripts/benchcmp.sh [-b base-rev] [-p pattern] [-n benchtime] [-f figure]
#   -b  base revision to compare against (default HEAD)
#   -p  benchmark regexp passed to -bench  (default BenchmarkTuneEvaluationEngine|BenchmarkFoldInterpreter)
#   -n  -benchtime value                   (default 3x)
#   -f  tunebench figure to diff as JSON (e.g. serve, eval, drift)
set -eu

cd "$(dirname "$0")/.."

base="HEAD"
pattern='BenchmarkTuneEvaluationEngine|BenchmarkFoldInterpreter'
benchtime="3x"
figure=""
while getopts b:p:n:f: opt; do
    case "$opt" in
    b) base="$OPTARG" ;;
    p) pattern="$OPTARG" ;;
    n) benchtime="$OPTARG" ;;
    f) figure="$OPTARG" ;;
    *) echo "usage: $0 [-b base-rev] [-p pattern] [-n benchtime] [-f figure]" >&2; exit 2 ;;
    esac
done

run_bench() {
    (cd "$1" && go test -run XXX -bench "$pattern" -benchtime "$benchtime" ./... 2>/dev/null) |
        awk '$1 ~ /^Benchmark/ && $3 == "ns/op" { print $1, $2 } $1 ~ /^Benchmark/ && $4 == "ns/op" { print $1, $3 }'
}

# run_fig regenerates the figure's JSON in the given tree and flattens
# it with the CURRENT tree's benchjson (the base revision may predate
# it). A tree without the figure yields no lines, which the diff below
# renders as all-new fields.
run_fig() {
    json="$2/bench_fig.json"
    if (cd "$1" && go run ./cmd/tunebench -fig "$figure" -json "$json" >/dev/null 2>&1); then
        go run ./cmd/benchjson "$json"
    fi
}

worktree="$(mktemp -d)"
cleanup() {
    git worktree remove --force "$worktree" >/dev/null 2>&1 || true
    rm -rf "$worktree"
}
trap cleanup EXIT INT TERM

git worktree add --quiet --detach "$worktree" "$base"

if [ -n "$figure" ]; then
    echo "benchcmp: base=$base figure=$figure"
    scratch="$(mktemp -d)"
    trap 'cleanup; rm -rf "$scratch"' EXIT INT TERM
    mkdir -p "$scratch/base" "$scratch/new"
    echo "== regenerating figure '$figure' at base ($base) =="
    before="$(run_fig "$worktree" "$scratch/base")"
    echo "== regenerating figure '$figure' in working tree =="
    after="$(run_fig . "$scratch/new")"
    printf '%s\n' "$before" > "$scratch/.before"
    printf '%s\n' "$after" | awk -v beforefile="$scratch/.before" '
BEGIN {
    while ((getline line < beforefile) > 0) {
        sp = index(line, " ")
        if (sp > 0) base[substr(line, 1, sp - 1)] = substr(line, sp + 1)
    }
    printf "%-55s %18s %18s %9s\n", "field", "base", "new", "delta"
}
{
    sp = index($0, " ")
    if (sp == 0) next
    name = substr($0, 1, sp - 1); new = substr($0, sp + 1)
    if (name in base) {
        old = base[name]
        delta = (old + 0 != 0 && old ~ /^-?[0-9.]/ && new ~ /^-?[0-9.]/) ? \
            sprintf("%+.1f%%", (new - old) / old * 100) : (old == new ? "=" : "!=")
        printf "%-55s %18s %18s %9s\n", name, substr(old, 1, 18), substr(new, 1, 18), delta
        delete base[name]
    } else {
        printf "%-55s %18s %18s %9s\n", name, "-", substr(new, 1, 18), "new"
    }
}
END {
    for (name in base)
        printf "%-55s %18s %18s %9s\n", name, substr(base[name], 1, 18), "-", "gone"
}'
    exit 0
fi

echo "benchcmp: base=$base bench='$pattern' benchtime=$benchtime"

echo "== running base ($base) =="
before="$(run_bench "$worktree")"

echo "== running working tree =="
after="$(run_bench .)"

printf '%s\n' "$before" > "$worktree/.bench_before"
printf '%s\n' "$after" | awk -v beforefile="$worktree/.bench_before" '
BEGIN {
    while ((getline line < beforefile) > 0) {
        split(line, f, " ")
        base[f[1]] = f[2]
    }
    printf "%-60s %14s %14s %9s\n", "benchmark", "base ns/op", "new ns/op", "speedup"
}
{
    name = $1; new = $2
    if (name in base) {
        old = base[name]
        printf "%-60s %14.0f %14.0f %8.2fx\n", name, old, new, (new > 0 ? old / new : 0)
        delete base[name]
    } else {
        printf "%-60s %14s %14.0f %9s\n", name, "-", new, "new"
    }
}
END {
    for (name in base)
        printf "%-60s %14.0f %14s %9s\n", name, base[name], "-", "gone"
}'
