#!/usr/bin/env sh
# test_cli.sh — script-level checks for the CLI exit-code contract.
#
# Pins the behavior documented in cmd/iolint and cmd/iodiscover:
#   - clean sources exit 0;
#   - error-severity verifier diagnostics (TR001, mutated loop bound) make
#     both iolint -verify and iodiscover -loop-reduction exit 1;
#   - warning-severity diagnostics go to stderr only and never flip the
#     exit code;
#   - path switching resolves sprintf-built constant paths (no TR003) and
#     the switched kernel opens its file under /dev/shm, exit 0.
set -eu

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() {
    echo "test_cli: FAIL: $1" >&2
    exit 1
}

# A clean program: I/O behind a stable loop bound, nothing for the
# verifier to refuse.
cat > "$tmp/ok.c" <<'EOF'
int main() {
    FILE *fp = fopen("/scratch/ok.bin", "w");
    for (int i = 0; i < 8; i++) {
        fwrite(&i, 4, 1, fp);
    }
    fclose(fp);
    return 0;
}
EOF

# TR001 trigger: the loop bound mutates inside the loop body, so loop
# reduction would rewrite a moving bound — an error-severity refusal.
cat > "$tmp/tr001.c" <<'EOF'
int main() {
    int n = 8;
    FILE *fp = fopen("/scratch/bad.bin", "w");
    for (int i = 0; i < n; i++) {
        fwrite(&i, 4, 1, fp);
        n = n + 1;
    }
    fclose(fp);
    return 0;
}
EOF

# TR003 (warning): the path comes out of an unknown helper, so path
# switching cannot rewrite it — a warning, not an error.
cat > "$tmp/tr003.c" <<'EOF'
int main() {
    char name[64];
    build_name(name);
    FILE *fp = fopen(name, "w");
    fwrite(&name, 4, 1, fp);
    fclose(fp);
    return 0;
}
EOF

# Computed path built from sprintf of constants: TR003 must NOT fire and
# path switching must substitute a /dev/shm literal.
cat > "$tmp/sprintf_path.c" <<'EOF'
int main() {
    const char* outdir = "/scratch/run7";
    char fname[256];
    sprintf(fname, "%s/%s", outdir, "dump.bin");
    FILE *fp = fopen(fname, "w");
    for (int i = 0; i < 4; i++) {
        fwrite(&i, 4, 1, fp);
    }
    fclose(fp);
    return 0;
}
EOF

echo "== clean source exits 0 =="
go run ./cmd/iolint -verify "$tmp/ok.c" > /dev/null ||
    fail "iolint -verify on clean source exited nonzero"
go run ./cmd/iodiscover -loop-reduction 0.5 "$tmp/ok.c" > /dev/null ||
    fail "iodiscover on clean source exited nonzero"

echo "== TR001 makes iolint -verify exit 1 =="
if go run ./cmd/iolint -verify "$tmp/tr001.c" > "$tmp/lint.out" 2> "$tmp/lint.err"; then
    fail "iolint -verify did not exit nonzero on a mutated loop bound"
fi
grep -q "TR001" "$tmp/lint.out" ||
    fail "error-severity TR001 finding missing from iolint stdout"

echo "== TR001 makes iodiscover -loop-reduction exit 1 =="
if go run ./cmd/iodiscover -loop-reduction 0.5 "$tmp/tr001.c" > /dev/null 2> "$tmp/disc.err"; then
    fail "iodiscover did not exit nonzero when loop reduction was refused"
fi
grep -q "TR001" "$tmp/disc.err" ||
    fail "TR001 diagnostic missing from iodiscover stderr"

echo "== warnings stay on stderr and exit 0 =="
go run ./cmd/iolint -verify "$tmp/tr003.c" > "$tmp/warn.out" 2> "$tmp/warn.err" ||
    fail "warning-only iolint -verify run exited nonzero"
grep -q "TR003" "$tmp/warn.err" ||
    fail "TR003 warning missing from iolint stderr"
if grep -q "TR003" "$tmp/warn.out"; then
    fail "warning-severity TR003 leaked to iolint stdout"
fi

echo "== TR007 (unbounded I/O loop) makes plain iodiscover exit 1 =="
# The bound-analysis checks run on every verification pass, so a
# diverging I/O loop fails discovery even with no transform requested.
cat > "$tmp/tr007.c" <<'EOF'
int main() {
    int i;
    char buf[16];
    FILE *fp = fopen("/scratch/div.bin", "w");
    for (i = 0; i < 8; i--) {
        fwrite(buf, 4, 1, fp);
    }
    fclose(fp);
    return 0;
}
EOF
if go run ./cmd/iodiscover "$tmp/tr007.c" > /dev/null 2> "$tmp/tr007.err"; then
    fail "iodiscover did not exit nonzero on a statically unbounded I/O loop"
fi
grep -q "TR007" "$tmp/tr007.err" ||
    fail "TR007 diagnostic missing from iodiscover stderr"
if go run ./cmd/iolint -verify "$tmp/tr007.c" > "$tmp/tr007.out" 2>/dev/null; then
    fail "iolint -verify did not exit nonzero on a statically unbounded I/O loop"
fi
grep -q "TR007" "$tmp/tr007.out" ||
    fail "error-severity TR007 finding missing from iolint stdout"

echo "== -sig mode prints the symbolic signature =="
go run ./cmd/iolint -sig "$tmp/ok.c" > "$tmp/sig.out" ||
    fail "iolint -sig exited nonzero on a clean source"
grep -q "bytes written:" "$tmp/sig.out" ||
    fail "iolint -sig output missing the bytes-written line"
go run ./cmd/iodiscover -sig "$tmp/ok.c" > "$tmp/dsig.out" 2>/dev/null ||
    fail "iodiscover -sig exited nonzero on a clean source"
grep -q "hash:" "$tmp/dsig.out" ||
    fail "iodiscover -sig output missing the signature hash"

echo "== path switch resolves sprintf-of-constants =="
go run ./cmd/iodiscover -path-switch "$tmp/sprintf_path.c" > "$tmp/kernel.c" 2> "$tmp/switch.err" ||
    fail "iodiscover -path-switch exited nonzero on a resolvable computed path"
grep -q "/dev/shm/scratch/run7" "$tmp/kernel.c" ||
    fail "switched /dev/shm literal missing from the kernel"
if grep -q "TR003" "$tmp/switch.err"; then
    fail "TR003 raised for a constant-propagatable path"
fi

echo "== tuniod serves a tuning job over HTTP =="
# Tuning-as-a-service smoke: boot tuniod on an ephemeral port, submit a
# tiny macsio job, and poll until it reaches a terminal state with a
# result payload.
go build -o "$tmp/tuniod" ./cmd/tuniod
"$tmp/tuniod" -addr 127.0.0.1:0 2> "$tmp/tuniod.log" &
tuniod_pid=$!
# dash keeps `set -e` live inside EXIT traps: a kill of an already-dead
# daemon must not abort the trap (skipping cleanup) or turn a clean run
# into exit 1.
trap 'kill "$tuniod_pid" 2>/dev/null || :; rm -rf "$tmp"' EXIT

for _ in $(seq 1 100); do
    grep -q "listening on" "$tmp/tuniod.log" && break
    sleep 0.1
done
grep -q "listening on" "$tmp/tuniod.log" ||
    fail "tuniod did not announce its listening address"
base="$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$tmp/tuniod.log")"

code="$(curl -s -o "$tmp/job.json" -w '%{http_code}' "$base/v1/jobs" \
    -H 'X-Tunio-Tenant: smoke' \
    -d '{"workload":"macsio","nodes":2,"procs_per_node":8,"pop_size":8,"max_iterations":6,"reps":1,"seed":3,"parallelism":2}')"
[ "$code" = "202" ] || fail "job submit returned HTTP $code, want 202"
grep -q '"id": "job-1"' "$tmp/job.json" || fail "submit response missing the job id"

state=running
for _ in $(seq 1 300); do
    curl -s "$base/v1/jobs/job-1" > "$tmp/status.json"
    if grep -q '"state": "done"' "$tmp/status.json"; then
        state=done
        break
    fi
    if grep -Eq '"state": "(failed|canceled)"' "$tmp/status.json"; then
        fail "job ended abnormally: $(cat "$tmp/status.json")"
    fi
    sleep 0.1
done
[ "$state" = "done" ] || fail "job did not reach a terminal state in time"
grep -q '"best_perf_mbs"' "$tmp/status.json" ||
    fail "terminal status missing the result payload"
curl -s "$base/v1/stats" | grep -q '"sessions_done": 1' ||
    fail "tuniod stats did not count the finished session"

echo "== tuniod streams an online drift session over SSE =="
# Online smoke: the machine degrades at t=25, so the session must stream
# window events, announce at least one retune, and land a drift payload.
code="$(curl -s -o "$tmp/job_online.json" -w '%{http_code}' "$base/v1/jobs" \
    -H 'X-Tunio-Tenant: smoke' \
    -d '{"workload":"flash","nodes":2,"procs_per_node":8,"reps":1,"seed":5,"parallelism":2,
         "drift":{"seed":9,"regimes":[{"start":25,"ost_load":0.5,"nic_load":0.3,"contention":3}]},
         "online":{"windows":8,"window_gap_s":10,"neighbors":4,"rounds":2,"init_rounds":3,"prune":true}}')"
[ "$code" = "202" ] || fail "online job submit returned HTTP $code, want 202"
grep -q '"id": "job-2"' "$tmp/job_online.json" || fail "online submit response missing the job id"

# The SSE stream stays open until the session finishes, so a plain curl
# terminates on its own once the done event is written.
curl -s -N "$base/v1/jobs/job-2/events" > "$tmp/online.sse" ||
    fail "online SSE stream did not terminate cleanly"
[ "$(grep -c '^event: window' "$tmp/online.sse")" = "8" ] ||
    fail "online stream did not carry one window event per window"
grep -q '^event: retune' "$tmp/online.sse" ||
    fail "online stream carried no retune event through the regime change"
grep -q '^event: done' "$tmp/online.sse" ||
    fail "online stream did not end with a done event"
curl -s "$base/v1/jobs/job-2" > "$tmp/online_status.json"
grep -q '"retunes"' "$tmp/online_status.json" ||
    fail "online terminal status missing the drift payload"
kill "$tuniod_pid" 2>/dev/null || true

echo "== tuniotrain trains, resumes, and feeds tuniod =="
# Staged-pipeline smoke at tiny scale: train up to the sweep stage, then
# resume a full run — the sweep artifact must be reused, the remaining
# stages trained — and finally serve the resulting agent with tuniod.
go build -o "$tmp/tuniotrain" ./cmd/tuniotrain
train_flags="-nodes 1 -procs-per-node 8 -extra-random 2 -picker-epochs 2 -stopper-epochs 2 -horizon 8"
"$tmp/tuniotrain" -artifacts "$tmp/art" -store "$tmp/kernels.json" \
    -until sweep $train_flags 2> "$tmp/train1.log" ||
    fail "tuniotrain -until sweep exited nonzero: $(cat "$tmp/train1.log")"
grep -q "sweep: trained" "$tmp/train1.log" ||
    fail "first tuniotrain run did not train the sweep stage"
[ -f "$tmp/kernels.json" ] ||
    fail "tuniotrain did not save the kernel store"

"$tmp/tuniotrain" -artifacts "$tmp/art" -store "$tmp/kernels.json" \
    -resume $train_flags 2> "$tmp/train2.log" ||
    fail "resumed tuniotrain run exited nonzero: $(cat "$tmp/train2.log")"
grep -q "sweep: reused artifact" "$tmp/train2.log" ||
    fail "resumed run re-ran the sweep instead of reusing its artifact"
grep -q "stopper: trained" "$tmp/train2.log" ||
    fail "resumed run did not train the remaining stages"
[ -f "$tmp/art/agent.json" ] ||
    fail "resumed run did not write agent.json"

"$tmp/tuniod" -addr 127.0.0.1:0 -artifacts "$tmp/art" -store "$tmp/kernels.json" \
    2> "$tmp/tuniod2.log" &
tuniod2_pid=$!
trap 'kill "$tuniod_pid" "$tuniod2_pid" 2>/dev/null || :; rm -rf "$tmp"' EXIT

for _ in $(seq 1 100); do
    grep -q "listening on" "$tmp/tuniod2.log" && break
    sleep 0.1
done
grep -q "listening on" "$tmp/tuniod2.log" ||
    fail "artifact-serving tuniod did not announce its listening address"
grep -q "kernel store: loaded" "$tmp/tuniod2.log" ||
    fail "tuniod did not load the kernel store saved by tuniotrain"
base2="$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$tmp/tuniod2.log")"

code="$(curl -s -o "$tmp/job2.json" -w '%{http_code}' "$base2/v1/jobs" \
    -H 'X-Tunio-Tenant: smoke' \
    -d '{"workload":"macsio","nodes":2,"procs_per_node":8,"pop_size":8,"max_iterations":6,"reps":1,"seed":3,"parallelism":2,"pipeline":"tunio"}')"
[ "$code" = "202" ] || fail "pipeline=tunio submit returned HTTP $code, want 202"

state2=running
for _ in $(seq 1 300); do
    curl -s "$base2/v1/jobs/job-1" > "$tmp/status2.json"
    if grep -q '"state": "done"' "$tmp/status2.json"; then
        state2=done
        break
    fi
    if grep -Eq '"state": "(failed|canceled)"' "$tmp/status2.json"; then
        fail "pipeline=tunio job ended abnormally: $(cat "$tmp/status2.json")"
    fi
    sleep 0.1
done
[ "$state2" = "done" ] || fail "pipeline=tunio job did not finish in time"
grep -q '"best_perf_mbs"' "$tmp/status2.json" ||
    fail "pipeline=tunio terminal status missing the result payload"
kill "$tuniod2_pid" 2>/dev/null || true

echo "test_cli: all checks passed"
