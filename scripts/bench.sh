#!/usr/bin/env sh
# bench.sh — measure the evaluation engine and emit machine-readable
# results.
#
# Runs the staged trace-replay micro-benchmarks (ns/op and B/op for the
# replay inner loop and both evaluators), then the population-32
# evaluator benchmark over every paper workload, writing its result —
# ns/genome, B/genome, stage-cache hit rates, speedup, and score
# identity per workload — as JSON.
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_eval.json)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_eval.json}"

echo "== micro-benchmarks (ns/op, B/op) =="
go test -run '^$' -bench 'BenchmarkStagedExec|BenchmarkEval(DirectInterp|TraceReplay)' \
    -benchmem ./internal/replay ./internal/tuner

echo "== population benchmark (32 genomes x 5 workloads) -> $out =="
go run ./cmd/tunebench -fig eval -json "$out"

echo "bench: wrote $out"
