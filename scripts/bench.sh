#!/usr/bin/env sh
# bench.sh — measure the evaluation engine and emit machine-readable
# results.
#
# Runs the staged trace-replay micro-benchmarks (ns/op and B/op for the
# replay inner loop and both evaluators), then the population-32
# evaluator benchmark over every paper workload, writing its result —
# ns/genome, B/genome, stage-cache hit rates, speedup, and score
# identity per workload — as JSON.
#
# Also runs the offline-training benchmark — application-fidelity direct
# sweep vs the replay-backed sweep over the identical run plan, plus
# full-retrain and artifact-resume wall times — and writes it as JSON.
#
# Runs the online re-tuning benchmark — every paper workload served
# across a mid-run machine degradation, reporting time-to-readapt,
# recovery vs a zero-delay oracle, and the stage time saved by
# SHAMan-style pruning (with bit-identical window curves) — as JSON.
#
# Finally runs the concurrent-load serving benchmark — 8 simultaneous
# sessions per workload against one shared engine (in process and over a
# live HTTP server), sharded/copy-on-write caches vs a single-global-
# mutex baseline, with warm-path cache throughput and curve bit-identity
# against solo Tune — and writes it as JSON.
#
# Usage: scripts/bench.sh [eval.json] [train.json] [drift.json] [serve.json]
#        (defaults BENCH_eval.json, BENCH_train.json, BENCH_drift.json,
#        BENCH_serve.json)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_eval.json}"
trainout="${2:-BENCH_train.json}"
driftout="${3:-BENCH_drift.json}"
serveout="${4:-BENCH_serve.json}"

echo "== micro-benchmarks (ns/op, B/op) =="
go test -run '^$' -bench 'BenchmarkStagedExec|BenchmarkEval(DirectInterp|TraceReplay)|BenchmarkWarmHit' \
    -benchmem ./internal/replay ./internal/tuner

echo "== population benchmark (32 genomes x 5 workloads) -> $out =="
go run ./cmd/tunebench -fig eval -json "$out"

echo "== training pipeline benchmark (sweep + retrain + resume) -> $trainout =="
go run ./cmd/tunebench -fig train -json "$trainout"

echo "== online re-tuning benchmark (drift + pruning) -> $driftout =="
go run ./cmd/tunebench -fig drift -json "$driftout"

echo "== concurrent-load serving benchmark (8 sessions, sharded vs mutex) -> $serveout =="
go run ./cmd/tunebench -fig serve -json "$serveout"

echo "bench: wrote $out, $trainout, $driftout, and $serveout"
